#include "parallel/socket_communicator.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include <poll.h>
#include <unistd.h>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "rng/splitmix.hpp"
#include "telemetry/metrics_registry.hpp"

namespace vqmc::parallel {

namespace {

using wire::Frame;
using wire::FrameType;

constexpr std::uint64_t kNoBcastRoot = ~std::uint64_t(0);

/// Append a u64 to a byte payload (fixed little-endian host layout; all
/// ranks of a group run the same build, and the frame checksum rejects any
/// cross-build mixing).
void put_u64(std::vector<unsigned char>& out, std::uint64_t value) {
  const std::size_t offset = out.size();
  out.resize(offset + sizeof(value));
  std::memcpy(out.data() + offset, &value, sizeof(value));
}

std::uint64_t get_u64(const std::vector<unsigned char>& in,
                      std::size_t& offset) {
  VQMC_REQUIRE(offset + sizeof(std::uint64_t) <= in.size(),
               "socket comm: frame payload truncated");
  std::uint64_t value = 0;
  std::memcpy(&value, in.data() + offset, sizeof(value));
  offset += sizeof(value);
  return value;
}

void put_string(std::vector<unsigned char>& out, const std::string& s) {
  put_u64(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

std::string get_string(const std::vector<unsigned char>& in,
                       std::size_t& offset) {
  const std::uint64_t length = get_u64(in, offset);
  VQMC_REQUIRE(length <= 4096 && offset + length <= in.size(),
               "socket comm: corrupt string field in frame");
  std::string s(reinterpret_cast<const char*>(in.data() + offset),
                std::size_t(length));
  offset += length;
  return s;
}

/// Derive the listener endpoint for a non-root leader from the group's
/// rendezvous endpoint: unix sockets get a ".l<rank>" path suffix, tcp
/// listeners reuse the host with an ephemeral port.
std::string leader_endpoint_spec(const std::string& base, int rank) {
  if (base.rfind("unix://", 0) == 0)
    return base + ".l" + std::to_string(rank);
  const std::size_t colon = base.rfind(':');
  VQMC_REQUIRE(base.rfind("tcp://", 0) == 0 && colon != std::string::npos,
               "socket comm: cannot derive leader endpoint from '" + base +
                   "'");
  return base.substr(0, colon) + ":0";
}

}  // namespace

SocketCommunicator::SocketCommunicator(int rank, int world,
                                       SocketGroupOptions options)
    : rank_(rank), world_(world), options_(options),
      alive_(std::size_t(world), 1) {
  VQMC_REQUIRE(world_ >= 1, "socket comm: need at least one rank");
  VQMC_REQUIRE(rank_ >= 0 && rank_ < world_, "socket comm: rank out of range");
  VQMC_REQUIRE(options_.timeout_seconds >= 0,
               "socket comm: timeout must be >= 0");
  node_size_ = options_.node_size <= 0 ? world_ : options_.node_size;
  leader_rank_ = (rank_ / node_size_) * node_size_;
  is_leader_ = rank_ == leader_rank_;
}

SocketCommunicator::~SocketCommunicator() = default;

void SocketCommunicator::rendezvous(const std::string& endpoint) {
  if (world_ == 1) return;
  const double deadline = options_.rendezvous_timeout_seconds;

  if (rank_ == 0) {
    wire::Listener listener = wire::listen_on(endpoint);
    // Accept every other rank's HELLO: [rank][listen endpoint].
    std::vector<wire::Socket> by_rank(static_cast<std::size_t>(world_));
    std::vector<std::string> leader_endpoints(static_cast<std::size_t>(world_));
    for (int joined = 1; joined < world_; ++joined) {
      wire::Socket conn = wire::accept_from(listener.socket, deadline);
      Frame hello;
      VQMC_REQUIRE(wire::recv_frame(conn, hello, deadline) &&
                       hello.type == FrameType::kHello,
                   "socket comm: rendezvous peer hung up before HELLO");
      std::size_t offset = 0;
      const std::uint64_t peer = get_u64(hello.payload, offset);
      VQMC_REQUIRE(peer >= 1 && peer < std::uint64_t(world_),
                   "socket comm: HELLO with out-of-range rank");
      VQMC_REQUIRE(!by_rank[std::size_t(peer)].valid(),
                   "socket comm: duplicate HELLO for rank " +
                       std::to_string(peer));
      leader_endpoints[std::size_t(peer)] = get_string(hello.payload, offset);
      by_rank[std::size_t(peer)] = std::move(conn);
    }
    // WELCOME: [world][node_size][n_leaders][(rank, endpoint)...].
    std::vector<unsigned char> welcome;
    put_u64(welcome, std::uint64_t(world_));
    put_u64(welcome, std::uint64_t(node_size_));
    std::vector<int> leaders;
    for (int r = node_size_; r < world_; r += node_size_) leaders.push_back(r);
    put_u64(welcome, leaders.size());
    for (const int leader : leaders) {
      VQMC_REQUIRE(!leader_endpoints[std::size_t(leader)].empty(),
                   "socket comm: leader rank " + std::to_string(leader) +
                       " advertised no listener endpoint");
      put_u64(welcome, std::uint64_t(leader));
      put_string(welcome, leader_endpoints[std::size_t(leader)]);
    }
    for (int r = 1; r < world_; ++r) {
      VQMC_REQUIRE(wire::send_frame(by_rank[std::size_t(r)],
                                    FrameType::kWelcome, 0, welcome.data(),
                                    welcome.size(), deadline),
                   "socket comm: rank " + std::to_string(r) +
                       " vanished during rendezvous");
    }
    // Keep only direct children: node-0 members individually, every other
    // node through its leader. Members of other nodes re-dial their leader
    // and their rendezvous connection is dropped.
    for (int r = 1; r < std::min(node_size_, world_); ++r) {
      Child child;
      child.covered = {r};
      child.socket = std::move(by_rank[std::size_t(r)]);
      children_.push_back(std::move(child));
    }
    for (const int leader : leaders) {
      Child child;
      for (int r = leader; r < std::min(leader + node_size_, world_); ++r)
        child.covered.push_back(r);
      child.socket = std::move(by_rank[std::size_t(leader)]);
      children_.push_back(std::move(child));
    }
    std::sort(children_.begin(), children_.end(),
              [](const Child& a, const Child& b) {
                return a.covered.front() < b.covered.front();
              });
    return;
  }

  // Non-root: a leader binds its member listener before saying HELLO so the
  // advertised endpoint is already live.
  wire::Listener member_listener;
  std::string my_listen_endpoint;
  if (is_leader_) {
    member_listener = wire::listen_on(leader_endpoint_spec(endpoint, rank_));
    my_listen_endpoint = member_listener.endpoint;
  }

  wire::Socket root_conn = wire::connect_to(
      endpoint, deadline, rng::splitmix64_once(std::uint64_t(rank_) + 0x9e37),
      &connect_retries_);
  telemetry::metrics()
      .counter("comm.socket.connect_retries")
      .add(std::uint64_t(connect_retries_));
  std::vector<unsigned char> hello;
  put_u64(hello, std::uint64_t(rank_));
  put_string(hello, my_listen_endpoint);
  VQMC_REQUIRE(wire::send_frame(root_conn, FrameType::kHello, 0, hello.data(),
                                hello.size(), deadline),
               "socket comm: rendezvous listener hung up on HELLO");
  Frame welcome;
  if (!wire::recv_frame(root_conn, welcome, deadline) ||
      welcome.type != FrameType::kWelcome)
    throw CommTimeoutError(
        "socket comm: rendezvous ended before WELCOME (root died or group "
        "mismatch)");
  std::size_t offset = 0;
  VQMC_REQUIRE(get_u64(welcome.payload, offset) == std::uint64_t(world_),
               "socket comm: world size mismatch at rendezvous");
  VQMC_REQUIRE(get_u64(welcome.payload, offset) == std::uint64_t(node_size_),
               "socket comm: node size mismatch at rendezvous");
  const std::uint64_t n_leaders = get_u64(welcome.payload, offset);
  std::string my_leader_endpoint;
  for (std::uint64_t i = 0; i < n_leaders; ++i) {
    const std::uint64_t leader = get_u64(welcome.payload, offset);
    const std::string spec = get_string(welcome.payload, offset);
    if (int(leader) == leader_rank_) my_leader_endpoint = spec;
  }

  if (leader_rank_ == 0 || is_leader_) {
    // Direct child of the root: the rendezvous connection is the upstream.
    upstream_ = std::move(root_conn);
  } else {
    // Member of another node: upstream is the node leader.
    root_conn.close();
    VQMC_REQUIRE(!my_leader_endpoint.empty(),
                 "socket comm: no endpoint advertised for leader rank " +
                     std::to_string(leader_rank_));
    long long retries = 0;
    upstream_ = wire::connect_to(
        my_leader_endpoint, deadline,
        rng::splitmix64_once(std::uint64_t(rank_) + 0x51ed), &retries);
    connect_retries_ += retries;
    telemetry::metrics()
        .counter("comm.socket.connect_retries")
        .add(std::uint64_t(retries));
    std::vector<unsigned char> member_hello;
    put_u64(member_hello, std::uint64_t(rank_));
    put_string(member_hello, std::string());
    VQMC_REQUIRE(wire::send_frame(upstream_, FrameType::kHello, 0,
                                  member_hello.data(), member_hello.size(),
                                  deadline),
                 "socket comm: leader hung up on member HELLO");
  }

  if (is_leader_) {
    // Accept this node's members (they dial only after WELCOME).
    const int node_end = std::min(rank_ + node_size_, world_);
    std::vector<wire::Socket> by_rank(static_cast<std::size_t>(world_));
    for (int expected = rank_ + 1; expected < node_end; ++expected) {
      wire::Socket conn = wire::accept_from(member_listener.socket, deadline);
      Frame hello_frame;
      VQMC_REQUIRE(wire::recv_frame(conn, hello_frame, deadline) &&
                       hello_frame.type == FrameType::kHello,
                   "socket comm: member hung up before HELLO");
      std::size_t hello_offset = 0;
      const std::uint64_t member = get_u64(hello_frame.payload, hello_offset);
      VQMC_REQUIRE(int(member) > rank_ && int(member) < node_end,
                   "socket comm: HELLO from a rank outside this node");
      VQMC_REQUIRE(!by_rank[std::size_t(member)].valid(),
                   "socket comm: duplicate member HELLO");
      by_rank[std::size_t(member)] = std::move(conn);
    }
    for (int r = rank_ + 1; r < node_end; ++r) {
      Child child;
      child.covered = {r};
      child.socket = std::move(by_rank[std::size_t(r)]);
      children_.push_back(std::move(child));
    }
  }
}

int SocketCommunicator::live_count() const {
  int live = 0;
  for (const char a : alive_) live += a ? 1 : 0;
  return live;
}

bool SocketCommunicator::is_alive(int r) const {
  return r >= 0 && r < world_ && alive_[std::size_t(r)] != 0;
}

void SocketCommunicator::mark_dead(int r) {
  if (r >= 0 && r < world_) alive_[std::size_t(r)] = 0;
}

void SocketCommunicator::abort_group(const std::string& reason) {
  if (aborted_) return;
  aborted_ = true;
  abort_reason_ = reason;
  telemetry::metrics().counter("comm.socket.aborts").add();
  // Best-effort fan-out of the abort in both directions; a frame that cannot
  // be delivered within the grace deadline goes to a peer that is itself
  // dead or wedged — its own deadline machinery covers it.
  const double grace = 1.0;
  const auto try_send = [&](wire::Socket& socket) {
    if (!socket.valid()) return;
    try {
      wire::send_frame(socket, FrameType::kAbort, seq_, reason.data(),
                       reason.size(), grace);
    } catch (const CommTimeoutError&) {
    }
  };
  if (!left_) try_send(upstream_);
  for (Child& child : children_)
    if (!child.gone) try_send(child.socket);
}

void SocketCommunicator::throw_aborted() {
  throw CommTimeoutError("collective aborted: " + abort_reason_);
}

void SocketCommunicator::handle_child_death(Child& child, const char* how) {
  telemetry::metrics().counter("comm.socket.peer_deaths").add();
  for (const int r : child.covered) observed_deaths_.push_back(r);
  if (options_.on_peer_death == PeerDeathPolicy::kAbort) {
    std::string who = "rank " + std::to_string(child.covered.front());
    if (child.covered.size() > 1)
      who += "-" + std::to_string(child.covered.back());
    abort_group(who + " died (" + how + ") and the group policy is abort");
    throw_aborted();
  }
  for (const int r : child.covered) mark_dead(r);
  child.gone = true;
  child.socket.close();
}

void SocketCommunicator::collect_and_fold(Op op, std::span<Real> data,
                                          int bcast_root,
                                          std::vector<Real>& fold,
                                          bool& have_fold,
                                          std::vector<char>& liveness) {
  // Own contribution first: the leader is the lowest rank of its subtree, so
  // seeding the fold with it preserves ascending-rank fold order.
  const bool own_contributes =
      op == Op::kSum || op == Op::kMax ||
      (op == Op::kBcast && rank_ == bcast_root);
  if (own_contributes) {
    fold.assign(data.begin(), data.end());
    have_fold = true;
  }

  for (Child& child : children_) {
    if (child.gone) continue;
    Frame frame;
    bool alive_frame;
    try {
      alive_frame =
          wire::recv_frame(child.socket, frame, options_.timeout_seconds);
    } catch (const CommTimeoutError&) {
      // A connected-but-silent peer (hung, stopped, or deadlocked): the
      // deadline is the liveness check, and the whole group aborts exactly
      // like the thread backend's sense barrier does.
      abort_group("collective timed out after " +
                  std::to_string(options_.timeout_seconds) +
                  " s (a peer rank is hung or dead)");
      throw_aborted();
    }
    if (!alive_frame) {
      handle_child_death(child, "connection reset");
      continue;
    }
    if (frame.type == FrameType::kAbort) {
      abort_group(std::string(frame.payload.begin(), frame.payload.end()));
      throw_aborted();
    }
    if (frame.type == FrameType::kLeave) {
      // A LEAVE on this connection comes from the rank that owns it:
      // covered.front() (a leaf, or a leader whose members already left —
      // leave() forbids departing with live members). Any other covered
      // rank is therefore already dead; fold the whole connection out.
      for (const int r : child.covered) mark_dead(r);
      child.gone = true;
      continue;
    }
    VQMC_REQUIRE(frame.type == FrameType::kContrib,
                 "socket comm: unexpected frame type in collective");
    VQMC_REQUIRE(frame.seq == seq_,
                 "socket comm: collective sequence mismatch (peer skipped or "
                 "repeated a collective)");
    std::size_t offset = 0;
    VQMC_REQUIRE(get_u64(frame.payload, offset) == std::uint64_t(op),
                 "socket comm: collective op mismatch across ranks");
    const std::uint64_t frame_root = get_u64(frame.payload, offset);
    if (op == Op::kBcast)
      VQMC_REQUIRE(frame_root == std::uint64_t(bcast_root),
                   "socket comm: broadcast root mismatch across ranks");
    const std::uint64_t count = get_u64(frame.payload, offset);
    if (count > 0) {
      VQMC_REQUIRE(count == data.size(),
                   "socket comm: collective payload size mismatch");
      if (op == Op::kBcast) {
        VQMC_REQUIRE(!have_fold,
                     "socket comm: two broadcast payloads in one round");
        fold.resize(data.size());
        wire::decode_reals(frame.payload, offset, fold.data(), fold.size());
        have_fold = true;
      } else if (!have_fold) {
        fold.resize(data.size());
        wire::decode_reals(frame.payload, offset, fold.data(), fold.size());
        have_fold = true;
      } else {
        std::vector<Real> incoming(data.size());
        wire::decode_reals(frame.payload, offset, incoming.data(),
                           incoming.size());
        if (op == Op::kSum) {
          for (std::size_t i = 0; i < fold.size(); ++i)
            fold[i] += incoming[i];
        } else {
          for (std::size_t i = 0; i < fold.size(); ++i)
            fold[i] = std::max(fold[i], incoming[i]);
        }
      }
    }
    offset += count * sizeof(Real);
    // Trailing liveness bytes: the sender's current view of every rank it
    // covers, in rank order.
    VQMC_REQUIRE(offset + child.covered.size() <= frame.payload.size(),
                 "socket comm: liveness section truncated");
    for (std::size_t i = 0; i < child.covered.size(); ++i) {
      if (frame.payload[offset + i] == 0) mark_dead(child.covered[i]);
    }
  }

  // Report liveness for every rank this endpoint covers (its whole node for
  // a leader; the root's view travels in the RESULT bitmap instead).
  const int covered_end =
      rank_ == 0 ? world_ : std::min(leader_rank_ + node_size_, world_);
  liveness.clear();
  for (int r = rank_; r < covered_end; ++r)
    liveness.push_back(alive_[std::size_t(r)]);
}

void SocketCommunicator::scatter_result(
    const std::vector<unsigned char>& payload) {
  for (Child& child : children_) {
    if (child.gone) continue;
    bool delivered;
    try {
      delivered =
          wire::send_frame(child.socket, FrameType::kResult, seq_,
                           payload.data(), payload.size(),
                           options_.timeout_seconds);
    } catch (const CommTimeoutError&) {
      abort_group("collective timed out delivering a result (a peer rank is "
                  "wedged)");
      throw_aborted();
    }
    if (!delivered) handle_child_death(child, "reset during result scatter");
  }
}

void SocketCommunicator::round(Op op, std::span<Real> data, int bcast_root) {
  if (aborted_) throw_aborted();
  VQMC_REQUIRE(!left_, "socket comm: collective after leave()");
  if (op == Op::kBcast) {
    VQMC_REQUIRE(bcast_root >= 0 && bcast_root < world_,
                 "broadcast: root out of range");
    VQMC_REQUIRE(is_alive(bcast_root),
                 "broadcast: root rank has left the group");
  }
  Timer wait_timer;
  telemetry::metrics().counter("comm.socket.collectives").add();

  if (world_ == 1) {
    ++seq_;
    return;
  }

  std::vector<Real> fold;
  bool have_fold = false;
  std::vector<char> liveness;

  if (rank_ == 0) {
    collect_and_fold(op, data, bcast_root, fold, have_fold, liveness);
    if (op != Op::kBarrier) {
      VQMC_REQUIRE(have_fold, "socket comm: collective folded zero payloads");
      std::copy(fold.begin(), fold.end(), data.begin());
    }
    // RESULT: [world][alive bytes][count][reals].
    std::vector<unsigned char> result;
    put_u64(result, std::uint64_t(world_));
    result.insert(result.end(), alive_.begin(), alive_.end());
    put_u64(result, op == Op::kBarrier ? 0 : data.size());
    if (op != Op::kBarrier)
      wire::encode_reals(result, data.data(), data.size());
    scatter_result(result);
  } else {
    if (is_leader_)
      collect_and_fold(op, data, bcast_root, fold, have_fold, liveness);
    else {
      const bool own_contributes =
          op == Op::kSum || op == Op::kMax ||
          (op == Op::kBcast && rank_ == bcast_root);
      if (own_contributes) {
        fold.assign(data.begin(), data.end());
        have_fold = true;
      }
      liveness.assign(1, 1);  // a leaf covers only itself
    }

    // CONTRIB upward: [op][bcast_root][count][reals][liveness bytes].
    std::vector<unsigned char> contrib;
    put_u64(contrib, std::uint64_t(op));
    put_u64(contrib,
            op == Op::kBcast ? std::uint64_t(bcast_root) : kNoBcastRoot);
    put_u64(contrib, have_fold ? fold.size() : 0);
    if (have_fold) wire::encode_reals(contrib, fold.data(), fold.size());
    contrib.insert(contrib.end(), liveness.begin(), liveness.end());
    bool sent;
    try {
      sent = wire::send_frame(upstream_, FrameType::kContrib, seq_,
                              contrib.data(), contrib.size(),
                              options_.timeout_seconds);
    } catch (const CommTimeoutError&) {
      abort_group("collective timed out sending a contribution (the "
                  "reduction parent is wedged)");
      throw_aborted();
    }
    if (!sent) {
      abort_group("the reduction parent (rank " +
                  std::to_string(is_leader_ ? 0 : leader_rank_) +
                  ") died; this subtree cannot continue");
      throw_aborted();
    }

    // Wait for the folded RESULT. The parent's own deadline machinery fires
    // within timeout_seconds, so give its abort time to arrive before this
    // endpoint races it with a local timeout.
    const double result_deadline =
        options_.timeout_seconds > 0 ? 2 * options_.timeout_seconds + 0.5 : 0;
    Frame result;
    bool got;
    try {
      got = wire::recv_frame(upstream_, result, result_deadline);
    } catch (const CommTimeoutError&) {
      abort_group("collective timed out after " +
                  std::to_string(options_.timeout_seconds) +
                  " s (a peer rank is hung or dead)");
      throw_aborted();
    }
    if (!got) {
      abort_group("the reduction parent (rank " +
                  std::to_string(is_leader_ ? 0 : leader_rank_) +
                  ") died; this subtree cannot continue");
      throw_aborted();
    }
    if (result.type == FrameType::kAbort) {
      abort_group(std::string(result.payload.begin(), result.payload.end()));
      throw_aborted();
    }
    VQMC_REQUIRE(result.type == FrameType::kResult,
                 "socket comm: unexpected frame type while awaiting result");
    VQMC_REQUIRE(result.seq == seq_,
                 "socket comm: result sequence mismatch");
    std::size_t offset = 0;
    VQMC_REQUIRE(get_u64(result.payload, offset) == std::uint64_t(world_),
                 "socket comm: result world size mismatch");
    VQMC_REQUIRE(offset + std::size_t(world_) <= result.payload.size(),
                 "socket comm: result membership bitmap truncated");
    for (int r = 0; r < world_; ++r)
      if (result.payload[offset + std::size_t(r)] == 0) mark_dead(r);
    offset += std::size_t(world_);
    const std::uint64_t count = get_u64(result.payload, offset);
    if (op != Op::kBarrier) {
      VQMC_REQUIRE(count == data.size(),
                   "socket comm: result payload size mismatch");
      wire::decode_reals(result.payload, offset, data.data(), data.size());
    }
    // A leader relays the verbatim result frame to its live members.
    if (is_leader_) scatter_result(result.payload);
  }

  ++seq_;
  telemetry::metrics()
      .histogram("comm.socket.collective_seconds")
      .observe(wait_timer.seconds());
}

void SocketCommunicator::allreduce_sum(std::span<Real> data) {
  round(Op::kSum, data, -1);
}

void SocketCommunicator::allreduce_max(std::span<Real> data) {
  round(Op::kMax, data, -1);
}

void SocketCommunicator::broadcast(std::span<Real> data, int root) {
  round(Op::kBcast, data, root);
}

void SocketCommunicator::barrier() {
  round(Op::kBarrier, std::span<Real>(), -1);
}

void SocketCommunicator::leave() {
  if (left_ || aborted_) return;
  if (world_ == 1) {
    left_ = true;
    mark_dead(rank_);
    return;
  }
  VQMC_REQUIRE(rank_ != 0,
               "socket comm: the root cannot leave() — the group's sequencer "
               "would be orphaned (complete the run or abort instead)");
  for (const Child& child : children_)
    VQMC_REQUIRE(child.gone,
                 "socket comm: a reduction leader cannot leave() while its "
                 "node has live members — they would be orphaned");
  try {
    wire::send_frame(upstream_, FrameType::kLeave, seq_, nullptr, 0,
                     options_.timeout_seconds > 0 ? options_.timeout_seconds
                                                  : 5.0);
  } catch (const CommTimeoutError&) {
    // The parent is wedged; closing the connection below reports this rank
    // as dead instead of departed — same shrink outcome for the survivors.
  }
  left_ = true;
  mark_dead(rank_);
  upstream_.close();
}

void SocketCommunicator::interruptible_sleep(double seconds) {
  if (seconds <= 0 || aborted_) return;
  if (world_ == 1 || left_) {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    return;
  }
  if (rank_ != 0 && !is_leader_) {
    // A leaf has no outstanding collective while it sleeps, so readable
    // upstream data can only be an ABORT (or the EOF of a dead parent):
    // wake up early and let the next collective observe it.
    wire::poll_readable(upstream_, seconds);
    return;
  }
  // A reduction parent may legitimately receive contributions from children
  // that are already ahead, so it only watches for hangups (peer close) —
  // the signature of the group dissolving around a sleeping parent. A
  // non-root leader additionally wakes on upstream data (the root's ABORT).
  std::vector<pollfd> fds;
  if (rank_ != 0) fds.push_back(pollfd{upstream_.fd(), POLLIN, 0});
  for (const Child& child : children_)
    if (!child.gone) fds.push_back(pollfd{child.socket.fd(), POLLRDHUP, 0});
  if (fds.empty()) {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    return;
  }
  ::poll(fds.data(), nfds_t(fds.size()), int(seconds * 1000) + 1);
}

std::unique_ptr<SocketCommunicator> connect_socket_group(
    const std::string& endpoint, int rank, int world,
    const SocketGroupOptions& options) {
  std::unique_ptr<SocketCommunicator> comm(
      new SocketCommunicator(rank, world, options));
  comm->rendezvous(endpoint);
  return comm;
}

std::unique_ptr<SocketCommunicator> connect_socket_group_from_env(
    SocketGroupOptions options) {
  const char* endpoint = std::getenv("VQMC_ENDPOINT");
  const char* rank = std::getenv("VQMC_RANK");
  const char* world = std::getenv("VQMC_RANKS");
  VQMC_REQUIRE(endpoint && rank && world,
               "socket comm: VQMC_ENDPOINT, VQMC_RANK and VQMC_RANKS must "
               "all be set (use vqmc_launch)");
  if (const char* node_size = std::getenv("VQMC_NODE_SIZE"))
    options.node_size = std::atoi(node_size);
  return connect_socket_group(endpoint, std::atoi(rank), std::atoi(world),
                              options);
}

void rethrow_group_errors(const std::vector<std::exception_ptr>& errors) {
  std::exception_ptr first_timeout;
  for (const std::exception_ptr& err : errors) {
    if (!err) continue;
    try {
      std::rethrow_exception(err);
    } catch (const CommTimeoutError&) {
      if (!first_timeout) first_timeout = err;
    } catch (...) {
      std::rethrow_exception(err);
    }
  }
  if (first_timeout) std::rethrow_exception(first_timeout);
}

void run_socket_group(int num_ranks,
                      const std::function<void(Communicator&)>& body,
                      const SocketGroupOptions& options,
                      std::string endpoint) {
  VQMC_REQUIRE(num_ranks >= 1, "socket group: need at least one rank");
  if (endpoint.empty()) {
    // Fresh per-group unix socket path: pid + a process-wide counter keeps
    // concurrent groups (and concurrent test binaries) apart.
    static std::atomic<unsigned> group_counter{0};
    const char* tmpdir = std::getenv("TMPDIR");
    endpoint = std::string("unix://") + (tmpdir ? tmpdir : "/tmp") +
               "/vqmc_group_" + std::to_string(::getpid()) + "_" +
               std::to_string(group_counter.fetch_add(1)) + ".sock";
  }
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors{std::size_t(num_ranks)};
  threads.reserve(std::size_t(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    threads.emplace_back([&, r] {
      try {
        const std::unique_ptr<SocketCommunicator> comm =
            connect_socket_group(endpoint, r, num_ranks, options);
        body(*comm);
      } catch (...) {
        errors[std::size_t(r)] = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  rethrow_group_errors(errors);
}

}  // namespace vqmc::parallel
