#include "parallel/distributed_trainer.hpp"

#include <cmath>
#include <memory>
#include <mutex>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/estimators.hpp"
#include "core/local_energy.hpp"
#include "nn/made.hpp"
#include "optim/optimizer.hpp"
#include "parallel/thread_communicator.hpp"
#include "rng/splitmix.hpp"
#include "sampler/autoregressive_sampler.hpp"
#include "tensor/kernels.hpp"

namespace vqmc::parallel {

DistributedResult train_distributed(const Hamiltonian& hamiltonian,
                                    const AutoregressiveModel& prototype,
                                    const DistributedConfig& config,
                                    const DeviceCostModel& device) {
  VQMC_REQUIRE(config.shape.total() >= 1, "distributed: empty cluster");
  VQMC_REQUIRE(config.mini_batch_size >= 1, "distributed: mbs must be >= 1");
  VQMC_REQUIRE(config.iterations >= 0, "distributed: iterations must be >= 0");

  const int num_ranks = config.shape.total();
  const std::size_t n = hamiltonian.num_spins();
  const std::size_t mbs = config.mini_batch_size;
  const Real global_batch = Real(mbs) * Real(num_ranks);

  DistributedResult result;
  result.energy_history.assign(std::size_t(config.iterations), Real(0));
  std::mutex result_mutex;
  std::vector<double> busy_seconds(std::size_t(num_ranks), 0.0);

  run_thread_group(num_ranks, [&](Communicator& comm) {
    const int rank = comm.rank();

    // Per-rank replica and private RNG stream. Replicas start identical
    // (same prototype); the sampler streams differ per rank.
    std::unique_ptr<WavefunctionModel> replica_base = prototype.clone();
    auto* replica = dynamic_cast<AutoregressiveModel*>(replica_base.get());
    VQMC_REQUIRE(replica != nullptr, "distributed: clone lost its type");
    const std::uint64_t rank_seed =
        config.seed ^ rng::splitmix64_once(std::uint64_t(rank) + 1);
    AutoregressiveSampler sampler(*replica, rank_seed);
    LocalEnergyEngine engine(hamiltonian, *replica,
                             config.local_energy_chunk);
    std::unique_ptr<Optimizer> optimizer =
        config.optimizer == "SGD" ? make_sgd(0.1) : make_adam(0.01);

    Matrix batch(mbs, n);
    Vector local_energies(mbs);
    Vector gradient(replica->num_parameters());
    Vector coeff(mbs);
    // Per-thread CPU time: wall time would charge a virtual device for the
    // periods it sat descheduled when the host core is oversubscribed.
    ThreadCpuTimer busy;
    double my_busy = 0;

    for (int iter = 0; iter < config.iterations; ++iter) {
      busy.reset();
      sampler.sample(batch);
      engine.compute(batch, local_energies.span());
      Real stats[2] = {sum(local_energies.span()), Real(mbs)};
      my_busy += busy.seconds();

      comm.allreduce_sum(std::span<Real>(stats, 2));
      const Real global_mean = stats[0] / stats[1];

      busy.reset();
      // Local gradient contribution with *global* centering, so the
      // allreduced sum is exactly the serial gradient over the full batch.
      for (std::size_t k = 0; k < mbs; ++k)
        coeff[k] = 2 * (local_energies[k] - global_mean) / global_batch;
      gradient.fill(0);
      replica->accumulate_log_psi_gradient(batch, coeff.span(),
                                           gradient.span());
      my_busy += busy.seconds();

      comm.allreduce_sum(gradient.span());

      busy.reset();
      optimizer->step(replica->parameters(), gradient.span());
      my_busy += busy.seconds();

      if (rank == 0)
        result.energy_history[std::size_t(iter)] = global_mean;
    }

    // Final evaluation: fresh samples on every rank, global mean/std.
    const std::size_t eb = std::max<std::size_t>(1, config.eval_batch_per_rank);
    Matrix eval_batch(eb, n);
    Vector eval_energies(eb);
    sampler.sample(eval_batch);
    engine.compute(eval_batch, eval_energies.span());
    Real moments[3] = {sum(eval_energies.span()),
                       dot(eval_energies.span(), eval_energies.span()),
                       Real(eb)};
    comm.allreduce_sum(std::span<Real>(moments, 3));

    // Replica-consistency check: max minus min of each parameter across
    // ranks must be zero.
    Vector p_max(replica->num_parameters());
    Vector p_neg_min(replica->num_parameters());
    for (std::size_t i = 0; i < p_max.size(); ++i) {
      p_max[i] = replica->parameters()[i];
      p_neg_min[i] = -replica->parameters()[i];
    }
    comm.allreduce_max(p_max.span());
    comm.allreduce_max(p_neg_min.span());
    Real spread = 0;
    for (std::size_t i = 0; i < p_max.size(); ++i)
      spread = std::max(spread, p_max[i] + p_neg_min[i]);

    {
      const std::lock_guard<std::mutex> lock(result_mutex);
      busy_seconds[std::size_t(rank)] = my_busy;
      if (rank == 0) {
        const Real mean = moments[0] / moments[2];
        const Real var =
            std::max<Real>(0, moments[1] / moments[2] - mean * mean);
        result.converged_energy = mean;
        result.converged_std = std::sqrt(var);
        result.replicas_identical = spread == Real(0);
        result.final_parameters.assign(replica->parameters().begin(),
                                       replica->parameters().end());
      }
    }
  });

  for (double s : busy_seconds)
    result.max_rank_busy_seconds = std::max(result.max_rank_busy_seconds, s);

  // Modeled time: use the prototype's hidden width when available.
  std::size_t hidden = 0;
  if (const auto* made = dynamic_cast<const Made*>(&prototype))
    hidden = made->hidden_size();
  if (hidden > 0) {
    result.modeled_seconds =
        double(config.iterations) *
        model_iteration_seconds(device, config.shape, n, hidden, mbs,
                                config.local_energy_chunk);
  }
  return result;
}

}  // namespace vqmc::parallel
