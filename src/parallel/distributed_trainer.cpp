#include "parallel/distributed_trainer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <mutex>

#include "common/error.hpp"
#include "common/health.hpp"
#include "common/logging.hpp"
#include "common/timer.hpp"
#include "core/checkpoint.hpp"
#include "core/estimators.hpp"
#include "core/local_energy.hpp"
#include "nn/made.hpp"
#include "obs/exposition.hpp"
#include "optim/optimizer.hpp"
#include "parallel/thread_communicator.hpp"
#include "rng/splitmix.hpp"
#include "sampler/autoregressive_sampler.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/jsonl.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/tracer.hpp"
#include "tensor/kernels.hpp"

namespace vqmc::parallel {

namespace {

void validate_config(const DistributedConfig& config) {
  VQMC_REQUIRE(config.shape.total() >= 1, "distributed: empty cluster");
  VQMC_REQUIRE(config.mini_batch_size >= 1, "distributed: mbs must be >= 1");
  VQMC_REQUIRE(config.iterations >= 0, "distributed: iterations must be >= 0");
  VQMC_REQUIRE(config.comm_timeout_seconds >= 0,
               "distributed: comm timeout must be >= 0");
  VQMC_REQUIRE(config.checkpoint_every >= 0,
               "distributed: checkpoint cadence must be >= 0");
  VQMC_REQUIRE(!config.resume || !config.checkpoint_base.empty(),
               "distributed: resume requires checkpoint_base");
  if (config.optimizer != "SGD" && config.optimizer != "ADAM") {
    if (config.optimizer.find("SR") != std::string::npos)
      throw Error("distributed: optimizer '" + config.optimizer +
                  "' is not supported: stochastic reconfiguration is only "
                  "available in the serial VqmcTrainer (TrainerConfig::use_sr)"
                  " until distributed SR lands");
    throw Error("distributed: unknown optimizer '" + config.optimizer +
                "' (expected \"SGD\" or \"ADAM\")");
  }
}

double modeled_run_seconds(const DistributedConfig& config,
                           const AutoregressiveModel& prototype,
                           const DeviceCostModel& device, std::size_t n) {
  std::size_t hidden = 0;
  if (const auto* made = dynamic_cast<const Made*>(&prototype))
    hidden = made->hidden_size();
  if (hidden == 0) return 0;
  return double(config.iterations) *
         model_iteration_seconds(device, config.shape, n, hidden,
                                 config.mini_batch_size,
                                 config.local_energy_chunk);
}

/// Everything one endpoint knows when its part of the run ends. Global
/// fields are identical on every rank that reached the end (they derive
/// from allreduced data only); the `*_per_rank` vectors come from one
/// trailing gather allreduce, so ranks dead by then read 0.
struct RankOutcome {
  std::vector<Real> energy_history;
  std::vector<ShrinkEvent> shrink_events;
  Real converged_energy = 0;
  Real converged_std = 0;
  bool replicas_identical = false;
  std::uint64_t guard_trips = 0;
  std::string last_trip_reason;
  int final_live_ranks = 0;
  std::vector<Real> final_parameters;
  telemetry::MetricsSnapshot merged_metrics;
  bool reached_end = false;      ///< false when this rank died mid-run
  bool is_final_reporter = false;  ///< lowest rank alive at the end
  // This rank's own tallies (valid even when it died mid-run):
  double my_busy_seconds = 0;
  double my_allreduce_wait_seconds = 0;
  std::uint64_t my_bad_contributions = 0;
  // Gathered across the ranks that survived to the end:
  std::vector<double> busy_seconds_per_rank;
  std::vector<double> allreduce_wait_seconds_per_rank;
  std::vector<std::uint64_t> bad_contributions_per_rank;
};

/// The per-rank training body, shared verbatim by the thread-backed driver
/// and the multi-process (socket-backed) driver.
RankOutcome run_rank(const Hamiltonian& hamiltonian,
                     const AutoregressiveModel& prototype,
                     const DistributedConfig& config, Communicator& comm,
                     const FaultPlan& plan,
                     const std::function<void(long long)>& iteration_hook) {
  const int rank = comm.rank();
  const int num_ranks = comm.size();
  const std::size_t n = hamiltonian.num_spins();
  const std::size_t mbs = config.mini_batch_size;
  const health::GuardPolicy policy = config.guard.policy;

  RankOutcome outcome;
  outcome.energy_history.assign(std::size_t(config.iterations), Real(0));

  // Per-rank replica and private RNG stream. Replicas start identical
  // (same prototype); the sampler streams differ per rank — and are
  // independent of the cluster size, so a group that shrinks to the same
  // live set as a smaller cluster follows the identical trajectory.
  std::unique_ptr<WavefunctionModel> replica_base = prototype.clone();
  auto* replica = dynamic_cast<AutoregressiveModel*>(replica_base.get());
  VQMC_REQUIRE(replica != nullptr, "distributed: clone lost its type");
  const std::uint64_t rank_seed =
      config.seed ^ rng::splitmix64_once(std::uint64_t(rank) + 1);
  AutoregressiveSampler sampler(*replica, rank_seed);
  LocalEnergyEngine engine(hamiltonian, *replica, config.local_energy_chunk);
  std::unique_ptr<Optimizer> optimizer =
      config.optimizer == "SGD" ? make_sgd(0.1) : make_adam(0.01);

  const std::size_t d = replica->num_parameters();
  Matrix batch(mbs, n);
  Vector local_energies(mbs);
  Vector gradient(d);
  Vector coeff(mbs);
  // Guard- and liveness-aware collective buffers. Per-rank flags ride
  // along in the same allreduce as the payload, so detecting a sick or
  // dead rank costs no extra collective:
  //   stats    = [energy_sum, count, bad_0..R-1, live_0..R-1]
  //   grad_ext = [gradient_0..d-1, bad_0..R-1]
  // A rank whose local values are non-finite contributes zeros plus its
  // bad flag, so the folded payload stays finite for everyone. A dead rank
  // contributes nothing at all (the reduction skips it), so its live slot
  // stays 0 — that is how the survivors detect the shrink, and
  // stats[count] automatically becomes the surviving sample count used to
  // rescale the gradient average.
  std::vector<Real> stats(2 + 2 * std::size_t(num_ranks));
  Vector grad_ext(d + std::size_t(num_ranks));
  Vector snapshot;
  bool have_snapshot = false;
  if (policy == health::GuardPolicy::RollbackAndBackoff) snapshot = Vector(d);
  health::DivergenceDetector divergence(config.guard);
  std::uint64_t trips = 0;
  std::string last_reason;
  std::vector<char> known_alive(std::size_t(num_ranks), 1);
  // Per-thread CPU time: wall time would charge a virtual device for the
  // periods it sat descheduled when the host core is oversubscribed.
  ThreadCpuTimer busy;

  // Checkpoint/restart: each rank keeps its own TrainingSnapshot under
  // "<base>.rank<r>". Written at the top of an iteration (before any work of
  // that iteration), so a boundary kill at iteration k resumes exactly at
  // the last cadence point <= k and replays a bit-identical tail.
  std::unique_ptr<CheckpointKeeper> keeper;
  int start_iteration = 0;
  if (!config.checkpoint_base.empty()) {
    const std::string rank_path =
        config.checkpoint_base + ".rank" + std::to_string(rank);
    keeper = std::make_unique<CheckpointKeeper>(rank_path);
    if (config.resume) {
      const TrainingSnapshot loaded = load_training_checkpoint(rank_path);
      VQMC_REQUIRE(loaded.model_name == replica->name() &&
                       loaded.num_spins == n && loaded.num_parameters == d,
                   "distributed: checkpoint '" + rank_path +
                       "' was written for a different model");
      VQMC_REQUIRE(loaded.optimizer_name == optimizer->name(),
                   "distributed: checkpoint optimizer mismatch");
      VQMC_REQUIRE(loaded.sampler_name == sampler.name(),
                   "distributed: checkpoint sampler mismatch");
      std::copy(loaded.parameters.begin(), loaded.parameters.end(),
                replica->parameters().begin());
      optimizer->restore_state(loaded.optimizer_state);
      sampler.restore_state(loaded.sampler_state);
      VQMC_REQUIRE(loaded.trainer_state.size() >= 5,
                   "distributed: checkpoint trainer state truncated");
      health::DivergenceDetector::State guard_state;
      guard_state.best = loaded.trainer_state[0];
      guard_state.have_best = loaded.trainer_state[1] != 0;
      guard_state.consecutive = int(loaded.trainer_state[2]);
      divergence.set_state(guard_state);
      trips = std::uint64_t(loaded.trainer_state[3]);
      outcome.my_bad_contributions = std::uint64_t(loaded.trainer_state[4]);
      start_iteration = int(loaded.iteration);
      VQMC_REQUIRE(start_iteration >= 0 &&
                       start_iteration <= config.iterations,
                   "distributed: checkpoint iteration out of range");
    }
  }
  const auto write_checkpoint = [&](int iter) {
    TrainingSnapshot snap;
    snap.model_name = replica->name();
    snap.optimizer_name = optimizer->name();
    snap.sampler_name = sampler.name();
    snap.num_spins = n;
    snap.num_parameters = d;
    snap.iteration = iter;
    snap.parameters.assign(replica->parameters().begin(),
                           replica->parameters().end());
    snap.optimizer_state = optimizer->serialize_state();
    snap.sampler_state = sampler.serialize_state();
    const health::DivergenceDetector::State guard_state = divergence.state();
    snap.trainer_state = {guard_state.best, guard_state.have_best ? Real(1)
                                                                  : Real(0),
                          Real(guard_state.consecutive), Real(trips),
                          Real(outcome.my_bad_contributions)};
    keeper->write(snap);
  };

  // Per-rank metrics: this thread's `metrics()` calls — including the
  // sampler's and the communicator's — land in a private registry.
  // Pre-creating every instrument the rank can touch makes the instrument
  // set (and therefore the pack_additive payload layout) identical on every
  // rank regardless of which guard/recovery/death branches actually ran,
  // which the end-of-run allreduce merge requires.
  telemetry::MetricsRegistry rank_registry;
  const telemetry::ScopedMetricsRegistry scoped_registry(rank_registry);
  rank_registry.counter("sampler.auto.batches");
  rank_registry.counter("sampler.auto.forward_passes");
  rank_registry.counter("sampler.auto.samples");
  rank_registry.counter("sampler.nonfinite_rejections");
  rank_registry.counter("trainer.iterations");
  rank_registry.counter("trainer.guard_trips");
  rank_registry.counter("comm.socket.connect_retries");
  rank_registry.counter("comm.socket.collectives");
  rank_registry.counter("comm.socket.peer_deaths");
  rank_registry.counter("comm.socket.aborts");
  rank_registry.histogram("comm.socket.collective_seconds");
  rank_registry.histogram("comm.allreduce_wait_seconds");
  rank_registry.histogram("phase.sample_seconds");
  rank_registry.histogram("phase.local_energy_seconds");
  rank_registry.histogram("phase.gradient_seconds");
  rank_registry.histogram("phase.allreduce_seconds");
  rank_registry.histogram("phase.optimizer_seconds");
  // Gauges ride a trailing allreduce_max (not the additive merge), but the
  // layout-identical rule is the same — pre-create them all.
  telemetry::Gauge& iteration_gauge = rank_registry.gauge("trainer.iteration");
  telemetry::Gauge& live_ranks_gauge = rank_registry.gauge("comm.live_ranks");
  live_ranks_gauge.set(double(num_ranks));

  // Live exposition (DESIGN.md §5i): a per-rank scrape server over this
  // rank's private registry + flight-recorder slice. Rank 0 also gets the
  // group base so one scrape of `config.obs_endpoint` pulls every rank.
  // Declared before the try so a mid-run abort still answers scrapes until
  // run_rank unwinds.
  std::unique_ptr<obs::StatusServer> obs_server;
  if (!config.obs_endpoint.empty()) {
    obs::StatusServerOptions obs_options;
    obs_options.endpoint = obs::rank_endpoint(config.obs_endpoint, rank);
    obs_options.rank = rank;
    obs_options.world = num_ranks;
    if (rank == 0) obs_options.group_base = config.obs_endpoint;
    obs_server = std::make_unique<obs::StatusServer>(
        obs_options, [&rank_registry, rank, num_ranks] {
          obs::StatusReport report;
          report.add_metrics(rank_registry.snapshot());
          const telemetry::FlightRecorder& recorder =
              telemetry::FlightRecorder::instance();
          telemetry::FlightRecord last;
          if (recorder.latest(last, rank)) {
            report.set_field("energy", last.energy);
            report.set_field("live_ranks", double(last.live_ranks));
            report.set_field("guard_trips", double(last.guard_trips));
          }
          report.set_field("iteration_rate", recorder.iteration_rate(rank));
          report.set_field("world", double(num_ranks));
          report.set_field("trace_active",
                           telemetry::Tracer::instance().active() ? 1.0 : 0.0);
          report.set_field(
              "trace_events",
              double(telemetry::Tracer::instance().events().size()));
          return report;
        });
  }

  try {
    for (int iter = start_iteration; iter < config.iterations; ++iter) {
      // Real-process fault seam (vqmc_launch): kills never return, a
      // scripted leave throws RankDeadError, a stop blocks until SIGCONT.
      if (iteration_hook) iteration_hook(iter);

      if (plan.kill_at_iteration == iter) {
        // Cooperative death at an iteration boundary: leave the group so
        // peers' collectives complete without this rank, then unwind.
        comm.leave();
        throw RankDeadError("fault injection: rank " + std::to_string(rank) +
                            " killed at iteration " + std::to_string(iter));
      }

      if (keeper && config.checkpoint_every > 0 && iter > start_iteration &&
          iter % config.checkpoint_every == 0) {
        write_checkpoint(iter);
      }

      telemetry::set_iteration(iter);
      telemetry::Span iteration_span("iteration");
      rank_registry.counter("trainer.iterations").add();
      iteration_gauge.set(double(iter));

      busy.reset();
      Timer phase_timer;
      {
        TELEMETRY_SPAN("sample");
        sampler.sample(batch);
      }
      const double sample_seconds = phase_timer.seconds();
      rank_registry.histogram("phase.sample_seconds").observe(sample_seconds);
      phase_timer.reset();
      std::size_t bad_le = 0;
      {
        // The finite scan is O(mbs) post-processing of the energies; it
        // lives inside the span so phase spans tile the iteration.
        TELEMETRY_SPAN("local_energy");
        engine.compute(batch, local_energies.span());
        bad_le = health::count_nonfinite(local_energies.span());
      }
      const double le_seconds = phase_timer.seconds();

      // The span (and wait timer) opens at barrier *arrival* — once this
      // rank is ready to reduce.  On a contended substrate the scheduler
      // can park the thread anywhere between here and the collective
      // (the thread-CPU clock read below is a syscall, i.e. a preemption
      // point); that park time is straggler wait and belongs to the
      // allreduce phase, not to an untracked gap.
      Timer allreduce_timer;
      {
        TELEMETRY_SPAN("allreduce");
        rank_registry.histogram("phase.local_energy_seconds")
            .observe(le_seconds);
        outcome.my_busy_seconds += busy.seconds();
        std::fill(stats.begin(), stats.end(), Real(0));
        if (bad_le == 0) {
          stats[0] = sum(local_energies.span());
          stats[1] = Real(mbs);
        } else {
          stats[2 + std::size_t(rank)] = 1;
        }
        stats[2 + std::size_t(num_ranks) + std::size_t(rank)] = 1;  // live
        comm.allreduce_sum(std::span<Real>(stats.data(), stats.size()));
      }
      double iter_allreduce = allreduce_timer.seconds();
      int bad_energy_ranks = 0;
      int live_ranks = 0;
      for (int r = 0; r < num_ranks; ++r) {
        bad_energy_ranks += stats[2 + std::size_t(r)] > 0 ? 1 : 0;
        const bool live =
            stats[2 + std::size_t(num_ranks) + std::size_t(r)] > 0;
        live_ranks += live ? 1 : 0;
        if (!live && known_alive[std::size_t(r)]) {
          known_alive[std::size_t(r)] = 0;
          int live_after = 0;
          for (int q = 0; q < num_ranks; ++q)
            live_after +=
                stats[2 + std::size_t(num_ranks) + std::size_t(q)] > 0 ? 1
                                                                       : 0;
          // Every survivor sees identical flags, so every survivor records
          // the identical shrink log; only the lowest surviving rank
          // *reports* it (one log line / JSONL event per event).
          outcome.shrink_events.push_back(ShrinkEvent{iter, r, live_after});
          int reporter = 0;
          while (reporter < num_ranks &&
                 stats[2 + std::size_t(num_ranks) + std::size_t(reporter)] <=
                     0)
            ++reporter;
          if (rank == reporter) {
            log_warn("elastic shrink: rank " + std::to_string(r) +
                     " left at iteration " + std::to_string(iter) + ", " +
                     std::to_string(live_after) + " rank(s) remain");
            telemetry::jsonl_event(
                "shrink", {{"dead_rank", r}, {"live_after", live_after}});
          }
        }
      }
      // Surviving effective batch: the allreduced sample count. Healthy
      // full-strength runs fold to mbs * num_ranks exactly, so the
      // rescaling is bit-identical to the fixed divisor it replaces; after
      // an elastic shrink it becomes mbs * live_ranks automatically.
      const Real effective_batch = stats[1];
      const Real global_mean =
          stats[1] > 0 ? stats[0] / stats[1]
                       : std::numeric_limits<Real>::quiet_NaN();

      // Trip decisions are made from allreduced data only, so every rank
      // takes the same branch — the bit-identical-replicas invariant holds
      // through recoveries too.
      bool tripped = false;
      std::string reason;
      double gradient_seconds = 0;
      double optimizer_seconds = 0;
      if (bad_energy_ranks > 0) {
        tripped = true;
        reason = "non-finite local energies on " +
                 std::to_string(bad_energy_ranks) + " rank(s)";
        if (bad_le > 0) ++outcome.my_bad_contributions;
      } else if (divergence.update(global_mean)) {
        tripped = true;
        reason = "energy divergence: global batch mean exceeded the "
                 "explosion threshold for " +
                 std::to_string(config.guard.divergence_window) +
                 " consecutive iterations";
      }

      if (!tripped) {
        busy.reset();
        phase_timer.reset();
        bool bad_grad = false;
        {
          TELEMETRY_SPAN("gradient");
          if (policy == health::GuardPolicy::RollbackAndBackoff) {
            std::copy(replica->parameters().begin(),
                      replica->parameters().end(), snapshot.begin());
            have_snapshot = true;
          }
          // Local gradient contribution with *global* centering, so the
          // allreduced sum is exactly the serial gradient over the full
          // surviving batch.
          for (std::size_t k = 0; k < mbs; ++k)
            coeff[k] = 2 * (local_energies[k] - global_mean) / effective_batch;
          gradient.fill(0);
          replica->accumulate_log_psi_gradient(batch, coeff.span(),
                                               gradient.span());
          // The O(d) finite scan and pack into the extended payload are
          // gradient post-processing; inside the span so phase spans tile
          // the iteration.
          bad_grad = !health::all_finite(gradient.span());
          std::copy(gradient.begin(), gradient.end(), grad_ext.begin());
          for (int r = 0; r < num_ranks; ++r)
            grad_ext[d + std::size_t(r)] = 0;
          if (bad_grad) {
            for (std::size_t i = 0; i < d; ++i) grad_ext[i] = 0;
            grad_ext[d + std::size_t(rank)] = 1;
          }
        }
        gradient_seconds = phase_timer.seconds();
        rank_registry.histogram("phase.gradient_seconds")
            .observe(gradient_seconds);
        outcome.my_busy_seconds += busy.seconds();

        allreduce_timer.reset();
        {
          TELEMETRY_SPAN("allreduce");
          comm.allreduce_sum(grad_ext.span());
        }
        iter_allreduce += allreduce_timer.seconds();
        int bad_grad_ranks = 0;
        for (int r = 0; r < num_ranks; ++r)
          bad_grad_ranks += grad_ext[d + std::size_t(r)] > 0 ? 1 : 0;
        if (bad_grad_ranks > 0) {
          tripped = true;
          reason = "non-finite gradient on " + std::to_string(bad_grad_ranks) +
                   " rank(s)";
          if (bad_grad) ++outcome.my_bad_contributions;
        } else {
          busy.reset();
          phase_timer.reset();
          {
            TELEMETRY_SPAN("optimizer");
            optimizer->step(replica->parameters(),
                            std::span<const Real>(grad_ext.data(), d));
          }
          optimizer_seconds = phase_timer.seconds();
          rank_registry.histogram("phase.optimizer_seconds")
              .observe(optimizer_seconds);
          outcome.my_busy_seconds += busy.seconds();
        }
      }

      if (tripped) {
        ++trips;
        last_reason = reason;
        rank_registry.counter("trainer.guard_trips").add();
        {
          // The lowest surviving rank reports (every survivor sees the
          // same allreduced flags, so exactly one rank logs).
          int reporter = 0;
          while (reporter < num_ranks && !known_alive[std::size_t(reporter)])
            ++reporter;
          if (rank == reporter) {
            if (policy != health::GuardPolicy::Throw)
              log_warn("health guard tripped at iteration " +
                       std::to_string(iter) + ": " + reason);
            telemetry::jsonl_event(
                "guard_trip", {{"reason", reason}, {"trips", trips}});
          }
        }
        switch (policy) {
          case health::GuardPolicy::Throw:
            // Every rank reaches this point together (the trip decision is
            // post-allreduce), so throwing here cannot strand a peer inside
            // a collective.
            throw Error("distributed: health guard tripped at iteration " +
                        std::to_string(iter) + ": " + reason);
          case health::GuardPolicy::SkipIteration:
            break;
          case health::GuardPolicy::RollbackAndBackoff:
            if (have_snapshot)
              std::copy(snapshot.begin(), snapshot.end(),
                        replica->parameters().begin());
            optimizer->set_learning_rate(optimizer->learning_rate() *
                                         config.guard.backoff_factor);
            divergence.reset_streak();
            break;
        }
      }

      // Every rank records the (identical, allreduced) iteration energy.
      outcome.energy_history[std::size_t(iter)] = global_mean;

      outcome.my_allreduce_wait_seconds += iter_allreduce;
      rank_registry.histogram("comm.allreduce_wait_seconds")
          .observe(iter_allreduce);
      rank_registry.histogram("phase.allreduce_seconds")
          .observe(iter_allreduce);
      live_ranks_gauge.set(double(live_ranks));
      if (telemetry::enabled()) {
        telemetry::FlightRecord flight;
        flight.iteration = iter;
        flight.rank = rank;
        flight.live_ranks = live_ranks;
        flight.wall_us = telemetry::now_us();
        flight.energy = double(global_mean);
        flight.guard_trips = trips;
        flight.sample_seconds = sample_seconds;
        flight.local_energy_seconds = le_seconds;
        flight.gradient_seconds = gradient_seconds;
        flight.allreduce_seconds = iter_allreduce;
        flight.optimizer_seconds = optimizer_seconds;
        flight.comm_wait_seconds = iter_allreduce;
        telemetry::FlightRecorder::instance().record(flight);
      }
      // Sink I/O happens after the iteration span closes so it is not
      // charged to iteration wall time; guarded on active() because the
      // field list allocates.
      iteration_span.end();
      if (telemetry::JsonlLogger::instance().active()) {
        telemetry::jsonl_event(
            "iteration", {{"energy", double(global_mean)},
                          {"allreduce_wait_seconds", iter_allreduce}});
      }
    }
    telemetry::set_iteration(-1);

    // Final evaluation: fresh samples on every surviving rank, global
    // mean/std. A rank with non-finite evaluation energies is excluded
    // (zero contribution + flag) rather than poisoning the global
    // estimate; the exclusion is reported through guard_trips_per_rank and
    // last_trip_reason. Liveness flags ride along so the survivors agree
    // on who reports the result.
    const std::size_t eb = std::max<std::size_t>(1, config.eval_batch_per_rank);
    Matrix eval_batch(eb, n);
    Vector eval_energies(eb);
    sampler.sample(eval_batch);
    engine.compute(eval_batch, eval_energies.span());
    const bool bad_eval = !health::all_finite(eval_energies.span());
    std::vector<Real> moments(4 + std::size_t(num_ranks), Real(0));
    moments[0] = sum(eval_energies.span());
    moments[1] = dot(eval_energies.span(), eval_energies.span());
    moments[2] = Real(eb);
    if (bad_eval) {
      moments[0] = moments[1] = moments[2] = 0;
      moments[3] = 1;
      ++outcome.my_bad_contributions;
    }
    moments[4 + std::size_t(rank)] = 1;  // live
    comm.allreduce_sum(std::span<Real>(moments.data(), moments.size()));
    if (moments[3] > 0)
      last_reason = "non-finite evaluation energies on " +
                    std::to_string(int(moments[3])) + " rank(s)";
    int final_live = 0;
    int final_reporter = num_ranks;
    for (int r = 0; r < num_ranks; ++r) {
      if (moments[4 + std::size_t(r)] > 0) {
        ++final_live;
        final_reporter = std::min(final_reporter, r);
      }
    }

    // Replica-consistency check: max minus min of each parameter across
    // the surviving ranks must be zero.
    Vector p_max(replica->num_parameters());
    Vector p_neg_min(replica->num_parameters());
    for (std::size_t i = 0; i < p_max.size(); ++i) {
      p_max[i] = replica->parameters()[i];
      p_neg_min[i] = -replica->parameters()[i];
    }
    comm.allreduce_max(p_max.span());
    comm.allreduce_max(p_neg_min.span());
    Real spread = 0;
    for (std::size_t i = 0; i < p_max.size(); ++i)
      spread = std::max(spread, p_max[i] + p_neg_min[i]);

    // Cross-rank telemetry merge: one trailing allreduce over the packed
    // additive state. Every surviving rank pre-created the same instrument
    // set, so the payload layouts line up element-wise. Appended after all
    // existing collectives, so scripted fault call-indices are unaffected.
    telemetry::MetricsSnapshot merged = rank_registry.snapshot();
    std::vector<Real> metrics_payload = merged.pack_additive();
    comm.allreduce_sum(
        std::span<Real>(metrics_payload.data(), metrics_payload.size()));
    merged.apply_summed(metrics_payload);

    // Gather the per-rank tallies (busy time, allreduce wait, bad
    // contributions) with one more trailing allreduce so every survivor —
    // including a standalone vqmc_launch process — holds the full vectors.
    std::vector<Real> gathered(3 * std::size_t(num_ranks), Real(0));
    gathered[std::size_t(rank)] = Real(outcome.my_busy_seconds);
    gathered[std::size_t(num_ranks) + std::size_t(rank)] =
        Real(outcome.my_allreduce_wait_seconds);
    gathered[2 * std::size_t(num_ranks) + std::size_t(rank)] =
        Real(outcome.my_bad_contributions);
    comm.allreduce_sum(std::span<Real>(gathered.data(), gathered.size()));

    // Gauges merge by max, not sum (summing instantaneous readings across
    // ranks invents values nobody measured — DESIGN.md §5i). One more
    // trailing collective, appended last so scripted fault call-indices
    // stay put.
    std::vector<Real> gauge_payload = merged.pack_gauges();
    if (!gauge_payload.empty()) {
      comm.allreduce_max(
          std::span<Real>(gauge_payload.data(), gauge_payload.size()));
      merged.apply_gauge_max(gauge_payload);
    }
    outcome.busy_seconds_per_rank.resize(std::size_t(num_ranks));
    outcome.allreduce_wait_seconds_per_rank.resize(std::size_t(num_ranks));
    outcome.bad_contributions_per_rank.resize(std::size_t(num_ranks));
    for (int r = 0; r < num_ranks; ++r) {
      outcome.busy_seconds_per_rank[std::size_t(r)] =
          double(gathered[std::size_t(r)]);
      outcome.allreduce_wait_seconds_per_rank[std::size_t(r)] =
          double(gathered[std::size_t(num_ranks) + std::size_t(r)]);
      outcome.bad_contributions_per_rank[std::size_t(r)] = std::uint64_t(
          gathered[2 * std::size_t(num_ranks) + std::size_t(r)]);
    }

    const Real mean = moments[2] > 0
                          ? moments[0] / moments[2]
                          : std::numeric_limits<Real>::quiet_NaN();
    const Real var =
        moments[2] > 0
            ? std::max<Real>(0, moments[1] / moments[2] - mean * mean)
            : std::numeric_limits<Real>::quiet_NaN();
    outcome.converged_energy = mean;
    outcome.converged_std = std::sqrt(var);
    outcome.replicas_identical = spread == Real(0);
    outcome.guard_trips = trips;
    outcome.last_trip_reason = last_reason;
    outcome.final_live_ranks = final_live;
    outcome.final_parameters.assign(replica->parameters().begin(),
                                    replica->parameters().end());
    outcome.merged_metrics = std::move(merged);
    outcome.reached_end = true;
    outcome.is_final_reporter = rank == final_reporter;
  } catch (const RankDeadError&) {
    // This rank is dead; it has already left the group, so the survivors'
    // collectives complete without it. Its own tallies are kept in the
    // outcome and the shrink itself is detected and reported by the
    // survivors through the liveness flags.
    telemetry::set_iteration(-1);
  } catch (const Error& e) {
    // Aborting mid-run (comm timeout, guard Throw, corruption): leave the
    // flight-recorder evidence behind before unwinding. A no-op unless a
    // crash dir was configured.
    telemetry::set_iteration(-1);
    telemetry::FlightRecorder::instance().dump_crash_report(e.what(), rank);
    throw;
  }
  return outcome;
}

}  // namespace

DistributedResult train_distributed(const Hamiltonian& hamiltonian,
                                    const AutoregressiveModel& prototype,
                                    const DistributedConfig& config,
                                    const DeviceCostModel& device) {
  validate_config(config);

  const int num_ranks = config.shape.total();

  DistributedResult result;
  result.energy_history.assign(std::size_t(config.iterations), Real(0));
  result.guard_trips_per_rank.assign(std::size_t(num_ranks), 0);
  result.allreduce_wait_seconds_per_rank.assign(std::size_t(num_ranks), 0.0);
  std::mutex result_mutex;
  std::vector<double> busy_seconds(std::size_t(num_ranks), 0.0);

  GroupOptions group_options;
  group_options.timeout_seconds = config.comm_timeout_seconds;

  run_thread_group(num_ranks, [&](Communicator& endpoint) {
    const int rank = endpoint.rank();
    // Rank attribution for this thread: log lines gain a "[rank N]" prefix,
    // trace spans and JSONL events carry the rank field.
    set_log_rank(rank);

    // Optional scripted faults for this rank (test hook): route the rank's
    // collectives through the fault-injecting decorator.
    FaultPlan plan;
    if (std::size_t(rank) < config.fault_plans.size())
      plan = config.fault_plans[std::size_t(rank)];
    FaultInjectingCommunicator injected(endpoint, plan);
    Communicator& comm = plan.empty() ? endpoint : injected;

    RankOutcome outcome =
        run_rank(hamiltonian, prototype, config, comm, plan, {});

    // Cross-rank assembly. Per-rank tallies come from each rank's own
    // outcome (so ranks that died mid-run still report theirs); the global
    // fields come from the final reporter — the lowest rank alive at the
    // end — whose local view equals every other survivor's.
    const std::lock_guard<std::mutex> lock(result_mutex);
    busy_seconds[std::size_t(rank)] = outcome.my_busy_seconds;
    result.guard_trips_per_rank[std::size_t(rank)] =
        outcome.my_bad_contributions;
    result.allreduce_wait_seconds_per_rank[std::size_t(rank)] =
        outcome.my_allreduce_wait_seconds;
    if (outcome.reached_end && outcome.is_final_reporter) {
      result.energy_history = std::move(outcome.energy_history);
      result.shrink_events = std::move(outcome.shrink_events);
      result.converged_energy = outcome.converged_energy;
      result.converged_std = outcome.converged_std;
      result.replicas_identical = outcome.replicas_identical;
      result.guard_trips = outcome.guard_trips;
      result.last_trip_reason = outcome.last_trip_reason;
      result.final_live_ranks = outcome.final_live_ranks;
      result.final_parameters = std::move(outcome.final_parameters);
      result.merged_metrics = std::move(outcome.merged_metrics);
    }
  }, group_options);

  for (double s : busy_seconds)
    result.max_rank_busy_seconds = std::max(result.max_rank_busy_seconds, s);
  result.modeled_seconds = modeled_run_seconds(config, prototype, device,
                                               hamiltonian.num_spins());
  return result;
}

DistributedResult train_distributed_on(
    const Hamiltonian& hamiltonian, const AutoregressiveModel& prototype,
    const DistributedConfig& config, Communicator& comm,
    const DeviceCostModel& device,
    const std::function<void(long long)>& iteration_hook) {
  validate_config(config);
  VQMC_REQUIRE(config.shape.total() == comm.size(),
               "distributed: cluster shape (" +
                   std::to_string(config.shape.total()) +
                   " ranks) does not match the communicator world (" +
                   std::to_string(comm.size()) + ")");
  set_log_rank(comm.rank());

  FaultPlan plan;
  if (std::size_t(comm.rank()) < config.fault_plans.size())
    plan = config.fault_plans[std::size_t(comm.rank())];
  FaultInjectingCommunicator injected(comm, plan);
  Communicator& routed = plan.empty() ? comm : injected;

  RankOutcome outcome =
      run_rank(hamiltonian, prototype, config, routed, plan, iteration_hook);

  DistributedResult result;
  result.energy_history = std::move(outcome.energy_history);
  result.shrink_events = std::move(outcome.shrink_events);
  result.converged_energy = outcome.converged_energy;
  result.converged_std = outcome.converged_std;
  result.replicas_identical = outcome.replicas_identical;
  result.guard_trips = outcome.guard_trips;
  result.last_trip_reason = outcome.last_trip_reason;
  result.final_live_ranks = outcome.final_live_ranks;
  result.final_parameters = std::move(outcome.final_parameters);
  result.merged_metrics = std::move(outcome.merged_metrics);
  result.guard_trips_per_rank = std::move(outcome.bad_contributions_per_rank);
  result.allreduce_wait_seconds_per_rank =
      std::move(outcome.allreduce_wait_seconds_per_rank);
  for (const double s : outcome.busy_seconds_per_rank)
    result.max_rank_busy_seconds = std::max(result.max_rank_busy_seconds, s);
  // A rank that died mid-run never reaches the trailing gather; size the
  // per-rank vectors anyway so callers can index them uniformly.
  result.guard_trips_per_rank.resize(std::size_t(comm.size()), 0);
  result.allreduce_wait_seconds_per_rank.resize(std::size_t(comm.size()), 0.0);
  result.modeled_seconds = modeled_run_seconds(config, prototype, device,
                                               hamiltonian.num_spins());
  return result;
}

}  // namespace vqmc::parallel
