#pragma once

/// \file optimizer.hpp
/// \brief First-order optimizer interface.
///
/// Optimizers consume a gradient (possibly already preconditioned by
/// stochastic reconfiguration) and update the flat parameter vector in
/// place.  The paper's configurations: SGD (lr 0.1), Adam (lr 0.01,
/// default), and SGD+SR (lr 0.1 on the natural gradient).

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "tensor/real.hpp"

namespace vqmc {

/// In-place parameter update rule.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Apply one update: params -= f(grad). Both spans have length d; the
  /// optimizer may keep per-parameter state (moments) sized on first use.
  virtual void step(std::span<Real> params, std::span<const Real> grad) = 0;

  /// Reset internal state (moment estimates, step counter).
  virtual void reset() = 0;

  /// Current base learning rate.
  [[nodiscard]] virtual Real learning_rate() const = 0;

  /// Change the base learning rate (used by LrSchedule-driven training).
  virtual void set_learning_rate(Real lr) = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Full mutable state as a flat vector (checkpoint/restart). Restoring the
  /// serialized state into a same-kind optimizer makes its subsequent steps
  /// bit-identical to the original's. The base default covers stateless
  /// rules: just the learning rate.
  [[nodiscard]] virtual std::vector<Real> serialize_state() const {
    return {learning_rate()};
  }

  /// Inverse of serialize_state(). Throws vqmc::Error on a state vector
  /// that cannot belong to this optimizer kind.
  virtual void restore_state(const std::vector<Real>& state) {
    VQMC_REQUIRE(state.size() == 1,
                 name() + ": optimizer state size mismatch");
    set_learning_rate(state[0]);
  }
};

/// Factory helpers matching the paper's three optimizer configurations.
std::unique_ptr<Optimizer> make_sgd(Real learning_rate = 0.1,
                                    Real momentum = 0.0);
std::unique_ptr<Optimizer> make_adam(Real learning_rate = 0.01,
                                     Real beta1 = 0.9, Real beta2 = 0.999,
                                     Real epsilon = 1e-8);

}  // namespace vqmc
