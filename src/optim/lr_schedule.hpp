#pragma once

/// \file lr_schedule.hpp
/// \brief Learning-rate schedules.
///
/// The paper applies no scheduler ("No learning rate scheduler is
/// applied"), so ConstantSchedule reproduces its protocol; Step and Cosine
/// schedules are provided for downstream users (they noticeably help SGD on
/// the larger Max-Cut instances).

#include <memory>

#include "tensor/real.hpp"

namespace vqmc {

/// Maps an iteration index to a learning-rate multiplier (1 = base rate).
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  /// Multiplier applied to the optimizer's base learning rate at
  /// iteration `iteration` (0-based).
  [[nodiscard]] virtual Real multiplier(int iteration) const = 0;
};

/// The paper's setting: no schedule.
class ConstantSchedule final : public LrSchedule {
 public:
  [[nodiscard]] Real multiplier(int /*iteration*/) const override { return 1; }
};

/// Multiply by `gamma` every `period` iterations.
class StepDecaySchedule final : public LrSchedule {
 public:
  StepDecaySchedule(int period, Real gamma);
  [[nodiscard]] Real multiplier(int iteration) const override;

 private:
  int period_;
  Real gamma_;
};

/// Cosine annealing from 1 to `floor` over `horizon` iterations; clamps at
/// `floor` afterwards.
class CosineSchedule final : public LrSchedule {
 public:
  CosineSchedule(int horizon, Real floor = 0);
  [[nodiscard]] Real multiplier(int iteration) const override;

 private:
  int horizon_;
  Real floor_;
};

}  // namespace vqmc
