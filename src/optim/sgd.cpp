#include "optim/sgd.hpp"

#include "common/error.hpp"

namespace vqmc {

Sgd::Sgd(Real learning_rate, Real momentum)
    : lr_(learning_rate), momentum_(momentum) {
  VQMC_REQUIRE(learning_rate > 0, "SGD: learning rate must be positive");
  VQMC_REQUIRE(momentum >= 0 && momentum < 1, "SGD: momentum must be in [0,1)");
}

void Sgd::step(std::span<Real> params, std::span<const Real> grad) {
  VQMC_REQUIRE(params.size() == grad.size(), "SGD: size mismatch");
  if (momentum_ == Real(0)) {
    for (std::size_t i = 0; i < params.size(); ++i)
      params[i] -= lr_ * grad[i];
    return;
  }
  if (velocity_.size() != params.size()) velocity_ = Vector(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    velocity_[i] = momentum_ * velocity_[i] + grad[i];
    params[i] -= lr_ * velocity_[i];
  }
}

void Sgd::reset() { velocity_ = Vector(); }

std::vector<Real> Sgd::serialize_state() const {
  std::vector<Real> state;
  state.reserve(1 + velocity_.size());
  state.push_back(lr_);
  state.insert(state.end(), velocity_.span().begin(), velocity_.span().end());
  return state;
}

void Sgd::restore_state(const std::vector<Real>& state) {
  VQMC_REQUIRE(!state.empty(), "SGD: optimizer state size mismatch");
  lr_ = state[0];
  velocity_ = state.size() > 1 ? Vector(state.size() - 1) : Vector();
  for (std::size_t i = 0; i < velocity_.size(); ++i)
    velocity_[i] = state[1 + i];
}

std::unique_ptr<Optimizer> make_sgd(Real learning_rate, Real momentum) {
  return std::make_unique<Sgd>(learning_rate, momentum);
}

}  // namespace vqmc
