#pragma once

/// \file sgd.hpp
/// \brief Stochastic gradient descent with optional heavy-ball momentum.

#include "optim/optimizer.hpp"
#include "tensor/vector.hpp"

namespace vqmc {

/// params -= lr * v, with v = momentum * v + grad (plain SGD at momentum 0).
class Sgd final : public Optimizer {
 public:
  explicit Sgd(Real learning_rate = 0.1, Real momentum = 0.0);

  void step(std::span<Real> params, std::span<const Real> grad) override;
  void reset() override;
  [[nodiscard]] std::string name() const override { return "SGD"; }

  /// State layout: [lr, velocity...] (velocity only once it exists).
  [[nodiscard]] std::vector<Real> serialize_state() const override;
  void restore_state(const std::vector<Real>& state) override;

  [[nodiscard]] Real learning_rate() const override { return lr_; }
  void set_learning_rate(Real lr) override { lr_ = lr; }

 private:
  Real lr_;
  Real momentum_;
  Vector velocity_;  ///< lazily sized on first step
};

}  // namespace vqmc
