#include "optim/stochastic_reconfiguration.hpp"

#include "common/error.hpp"
#include "common/health.hpp"
#include "linalg/cholesky.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/tracer.hpp"
#include "tensor/kernels.hpp"

namespace vqmc {

StochasticReconfiguration::StochasticReconfiguration(SrConfig config)
    : config_(config) {
  VQMC_REQUIRE(config_.regularization > 0,
               "SR: regularization must be positive");
}

SrReport StochasticReconfiguration::precondition(const Matrix& per_sample_o,
                                                 std::span<const Real> grad,
                                                 std::span<Real> delta) const {
  TELEMETRY_SPAN("sr.solve");
  const std::size_t bs = per_sample_o.rows();
  const std::size_t d = per_sample_o.cols();
  VQMC_REQUIRE(grad.size() == d && delta.size() == d,
               "SR: gradient size mismatch");
  VQMC_REQUIRE(bs >= 2, "SR: need at least 2 samples");

  const auto fail = [&delta](const std::string& why) {
    for (Real& v : delta) v = 0;
    SrReport report;
    report.converged = false;
    report.breakdown = true;
    report.reason = why;
    return report;
  };
  if (!health::all_finite(grad)) return fail("non-finite gradient input");
  if (!health::all_finite(per_sample_o))
    return fail("non-finite per-sample log-derivatives");

  // Column means o_bar.
  Vector o_bar(d);
  column_sum_accumulate(per_sample_o, o_bar.span());
  scale(o_bar.span(), Real(1) / Real(bs));

  const Real lambda = config_.regularization;

  if (d <= config_.dense_threshold) {
    // Dense path: S = O^T O / bs - o_bar o_bar^T + lambda I.
    Matrix s(d, d);
    gemm_tn_accumulate(per_sample_o, per_sample_o, s);
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = 0; j < d; ++j) {
        s(i, j) = s(i, j) / Real(bs) - o_bar[i] * o_bar[j];
      }
      s(i, i) += lambda;
    }
    const bool ok = linalg::solve_spd(s, grad, delta);
    if (!ok)
      return fail("dense Cholesky failed: S + lambda I is not positive "
                  "definite");
    if (!health::all_finite(delta))
      return fail("dense solve produced a non-finite solution");
    return {};
  }

  // Matrix-free path: S v = O^T (O v) / bs - o_bar (o_bar . v) + lambda v.
  Vector ov(bs);
  const auto apply = [&](std::span<const Real> v, std::span<Real> out) {
    gemv(per_sample_o, v, ov.span());
    gemv_t(per_sample_o, ov.span(), out);
    const Real inv_bs = Real(1) / Real(bs);
    const Real ob_v = dot(o_bar.span(), v);
    for (std::size_t i = 0; i < out.size(); ++i)
      out[i] = out[i] * inv_bs - o_bar[i] * ob_v + lambda * v[i];
  };
  for (std::size_t i = 0; i < d; ++i) delta[i] = 0;
  const linalg::CgResult cg =
      linalg::conjugate_gradient(apply, grad, delta, config_.cg);
  if (cg.breakdown)
    return fail(std::string("CG breakdown: ") + cg.breakdown_reason);
  if (!health::all_finite(delta))
    return fail("CG produced a non-finite iterate");
  SrReport report;
  report.cg_iterations = cg.iterations;
  report.converged = cg.converged;
  if (telemetry::enabled())
    telemetry::metrics().histogram("sr.cg_iterations")
        .observe(double(cg.iterations));
  return report;
}

}  // namespace vqmc
