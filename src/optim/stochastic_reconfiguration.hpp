#pragma once

/// \file stochastic_reconfiguration.hpp
/// \brief Stochastic reconfiguration (SR) — stochastic natural gradient
/// descent (Sorella 1998; Amari 1998), Eq. 5 of the paper.
///
/// Given per-sample log-derivatives O(k, :) = d log psi(x_k)/d theta, SR
/// preconditions the energy gradient g by the regularized quantum geometric
/// tensor
///
///   S = cov(O) = (1/bs) O_c^T O_c,   O_c = O - mean(O),
///   delta = (S + lambda I)^{-1} g,
///
/// and the base optimizer then steps along delta instead of g.  Note the
/// Fisher matrix of pi = psi^2 is 4 S; the factor is absorbed into the
/// learning rate, matching standard VMC practice and the paper's settings
/// (lambda = 1e-3, lr = 0.1).
///
/// Two solve paths:
///  * dense (d <= dense_threshold): form S once, Cholesky-solve — O(d^3)
///    but cache-friendly and exact;
///  * matrix-free CG: each S v costs two passes over the bs x d sample
///    matrix, never forming S — the scalable path for large models.

#include <memory>
#include <string>

#include "linalg/conjugate_gradient.hpp"
#include "tensor/matrix.hpp"
#include "tensor/vector.hpp"

namespace vqmc {

struct SrConfig {
  Real regularization = 1e-3;  ///< lambda (the paper's value)
  std::size_t dense_threshold = 512;
  linalg::CgOptions cg;
};

/// Outcome of one SR solve. On `breakdown`, `delta` is not usable as an
/// update (it is zeroed) and `reason` says why — the trainer's health guard
/// decides whether to throw, skip or roll back instead of stepping along a
/// NaN direction.
struct SrReport {
  int cg_iterations = 0;  ///< 0 for the dense path
  /// CG met its tolerance (always true on the dense path when it succeeds).
  /// A false value without `breakdown` means CG merely hit its iteration
  /// cap; the iterate is finite and still a descent-ish direction.
  bool converged = true;
  bool breakdown = false;  ///< hard numerical failure; do not use delta
  std::string reason;      ///< empty unless breakdown
};

/// Natural-gradient preconditioner.
class StochasticReconfiguration {
 public:
  explicit StochasticReconfiguration(SrConfig config = {});

  /// Solve (S + lambda I) delta = grad with S built from `per_sample_o`
  /// (bs x d).  `delta` has length d and is overwritten.
  SrReport precondition(const Matrix& per_sample_o, std::span<const Real> grad,
                        std::span<Real> delta) const;

  [[nodiscard]] const SrConfig& config() const { return config_; }

 private:
  SrConfig config_;
};

}  // namespace vqmc
