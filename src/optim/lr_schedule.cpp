#include "optim/lr_schedule.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace vqmc {

StepDecaySchedule::StepDecaySchedule(int period, Real gamma)
    : period_(period), gamma_(gamma) {
  VQMC_REQUIRE(period > 0, "step decay: period must be positive");
  VQMC_REQUIRE(gamma > 0 && gamma <= 1, "step decay: gamma must be in (0,1]");
}

Real StepDecaySchedule::multiplier(int iteration) const {
  VQMC_REQUIRE(iteration >= 0, "step decay: iteration must be >= 0");
  return std::pow(gamma_, Real(iteration / period_));
}

CosineSchedule::CosineSchedule(int horizon, Real floor)
    : horizon_(horizon), floor_(floor) {
  VQMC_REQUIRE(horizon > 0, "cosine schedule: horizon must be positive");
  VQMC_REQUIRE(floor >= 0 && floor < 1, "cosine schedule: floor in [0,1)");
}

Real CosineSchedule::multiplier(int iteration) const {
  VQMC_REQUIRE(iteration >= 0, "cosine schedule: iteration must be >= 0");
  if (iteration >= horizon_) return floor_;
  const Real phase = std::numbers::pi * Real(iteration) / Real(horizon_);
  return floor_ + (1 - floor_) * (1 + std::cos(phase)) / 2;
}

}  // namespace vqmc
