#include "optim/adam.hpp"

#include <cmath>

#include "common/error.hpp"

namespace vqmc {

Adam::Adam(Real learning_rate, Real beta1, Real beta2, Real epsilon)
    : lr_(learning_rate), beta1_(beta1), beta2_(beta2), eps_(epsilon) {
  VQMC_REQUIRE(learning_rate > 0, "Adam: learning rate must be positive");
  VQMC_REQUIRE(beta1 >= 0 && beta1 < 1, "Adam: beta1 must be in [0,1)");
  VQMC_REQUIRE(beta2 >= 0 && beta2 < 1, "Adam: beta2 must be in [0,1)");
  VQMC_REQUIRE(epsilon > 0, "Adam: epsilon must be positive");
}

void Adam::step(std::span<Real> params, std::span<const Real> grad) {
  VQMC_REQUIRE(params.size() == grad.size(), "Adam: size mismatch");
  if (m_.size() != params.size()) {
    m_ = Vector(params.size());
    v_ = Vector(params.size());
    step_count_ = 0;
  }
  ++step_count_;
  const Real bc1 = 1 - std::pow(beta1_, Real(step_count_));
  const Real bc2 = 1 - std::pow(beta2_, Real(step_count_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    m_[i] = beta1_ * m_[i] + (1 - beta1_) * grad[i];
    v_[i] = beta2_ * v_[i] + (1 - beta2_) * grad[i] * grad[i];
    const Real m_hat = m_[i] / bc1;
    const Real v_hat = v_[i] / bc2;
    params[i] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
  }
}

void Adam::reset() {
  m_ = Vector();
  v_ = Vector();
  step_count_ = 0;
}

std::vector<Real> Adam::serialize_state() const {
  std::vector<Real> state;
  state.reserve(2 + 2 * m_.size());
  state.push_back(lr_);
  state.push_back(Real(step_count_));
  state.insert(state.end(), m_.span().begin(), m_.span().end());
  state.insert(state.end(), v_.span().begin(), v_.span().end());
  return state;
}

void Adam::restore_state(const std::vector<Real>& state) {
  VQMC_REQUIRE(state.size() >= 2 && (state.size() - 2) % 2 == 0,
               "Adam: optimizer state size mismatch");
  lr_ = state[0];
  step_count_ = long(state[1]);
  const std::size_t d = (state.size() - 2) / 2;
  m_ = Vector(d);
  v_ = Vector(d);
  for (std::size_t i = 0; i < d; ++i) {
    m_[i] = state[2 + i];
    v_[i] = state[2 + d + i];
  }
}

std::unique_ptr<Optimizer> make_adam(Real learning_rate, Real beta1, Real beta2,
                                     Real epsilon) {
  return std::make_unique<Adam>(learning_rate, beta1, beta2, epsilon);
}

}  // namespace vqmc
