#include "optim/adam.hpp"

#include <cmath>

#include "common/error.hpp"

namespace vqmc {

Adam::Adam(Real learning_rate, Real beta1, Real beta2, Real epsilon)
    : lr_(learning_rate), beta1_(beta1), beta2_(beta2), eps_(epsilon) {
  VQMC_REQUIRE(learning_rate > 0, "Adam: learning rate must be positive");
  VQMC_REQUIRE(beta1 >= 0 && beta1 < 1, "Adam: beta1 must be in [0,1)");
  VQMC_REQUIRE(beta2 >= 0 && beta2 < 1, "Adam: beta2 must be in [0,1)");
  VQMC_REQUIRE(epsilon > 0, "Adam: epsilon must be positive");
}

void Adam::step(std::span<Real> params, std::span<const Real> grad) {
  VQMC_REQUIRE(params.size() == grad.size(), "Adam: size mismatch");
  if (m_.size() != params.size()) {
    m_ = Vector(params.size());
    v_ = Vector(params.size());
    step_count_ = 0;
  }
  ++step_count_;
  const Real bc1 = 1 - std::pow(beta1_, Real(step_count_));
  const Real bc2 = 1 - std::pow(beta2_, Real(step_count_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    m_[i] = beta1_ * m_[i] + (1 - beta1_) * grad[i];
    v_[i] = beta2_ * v_[i] + (1 - beta2_) * grad[i] * grad[i];
    const Real m_hat = m_[i] / bc1;
    const Real v_hat = v_[i] / bc2;
    params[i] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
  }
}

void Adam::reset() {
  m_ = Vector();
  v_ = Vector();
  step_count_ = 0;
}

std::unique_ptr<Optimizer> make_adam(Real learning_rate, Real beta1, Real beta2,
                                     Real epsilon) {
  return std::make_unique<Adam>(learning_rate, beta1, beta2, epsilon);
}

}  // namespace vqmc
