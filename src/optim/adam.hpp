#pragma once

/// \file adam.hpp
/// \brief Adam optimizer (Kingma & Ba 2015) — the paper's default
/// (learning rate 0.01).

#include "optim/optimizer.hpp"
#include "tensor/vector.hpp"

namespace vqmc {

/// Adam with bias-corrected first/second moments.
class Adam final : public Optimizer {
 public:
  explicit Adam(Real learning_rate = 0.01, Real beta1 = 0.9,
                Real beta2 = 0.999, Real epsilon = 1e-8);

  void step(std::span<Real> params, std::span<const Real> grad) override;
  void reset() override;
  [[nodiscard]] std::string name() const override { return "ADAM"; }

  /// State layout: [lr, step_count, m..., v...].
  [[nodiscard]] std::vector<Real> serialize_state() const override;
  void restore_state(const std::vector<Real>& state) override;

  [[nodiscard]] Real learning_rate() const override { return lr_; }
  void set_learning_rate(Real lr) override { lr_ = lr; }

 private:
  Real lr_, beta1_, beta2_, eps_;
  Vector m_, v_;  ///< first/second moment estimates
  long step_count_ = 0;
};

}  // namespace vqmc
