#include "nn/deep_made.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "tensor/kernels.hpp"

namespace vqmc {

namespace {
constexpr Real kProbEps = 1e-12;
Real clamped_log(Real p) { return std::log(std::max(p, kProbEps)); }
}  // namespace

DeepMade::DeepMade(std::size_t n, std::size_t hidden, std::size_t depth)
    : n_(n),
      h_(hidden),
      depth_(depth),
      params_(hidden * n + hidden +                       // first layer
              (depth - 1) * (hidden * hidden + hidden) +  // deeper layers
              n * hidden + n),                            // output layer
      degrees_(hidden),
      input_mask_(hidden, n),
      hidden_mask_(hidden, hidden),
      output_mask_(n, hidden) {
  VQMC_REQUIRE(n_ >= 2, "DeepMADE: need at least 2 spins");
  VQMC_REQUIRE(h_ >= 1, "DeepMADE: hidden size must be positive");
  VQMC_REQUIRE(depth_ >= 1, "DeepMADE: depth must be >= 1");

  for (std::size_t k = 0; k < h_; ++k) degrees_[k] = 1 + (k % (n_ - 1));
  for (std::size_t k = 0; k < h_; ++k) {
    for (std::size_t j = 0; j < n_; ++j)
      input_mask_(k, j) = (j + 1 <= degrees_[k]) ? 1 : 0;
    for (std::size_t j = 0; j < h_; ++j)
      hidden_mask_(k, j) = (degrees_[k] >= degrees_[j]) ? 1 : 0;
    for (std::size_t i = 0; i < n_; ++i)
      output_mask_(i, k) = (i + 1 > degrees_[k]) ? 1 : 0;
  }
  initialize(0);
}

std::size_t DeepMade::w_offset(std::size_t layer) const {
  VQMC_ASSERT(layer < depth_, "DeepMADE: layer out of range");
  if (layer == 0) return 0;
  return h_ * n_ + h_ + (layer - 1) * (h_ * h_ + h_);
}

std::size_t DeepMade::b_offset(std::size_t layer) const {
  return w_offset(layer) + (layer == 0 ? h_ * n_ : h_ * h_);
}

std::size_t DeepMade::w_out_offset() const {
  return h_ * n_ + h_ + (depth_ - 1) * (h_ * h_ + h_);
}

std::size_t DeepMade::b_out_offset() const { return w_out_offset() + n_ * h_; }

void DeepMade::initialize(std::uint64_t seed) {
  rng::Xoshiro256 gen(seed ^ 0x444d414445ULL);  // "DMADE"
  Real* p = params_.data();
  const Real s_in = 1 / std::sqrt(Real(n_));
  const Real s_hid = 1 / std::sqrt(Real(h_));
  for (std::size_t i = 0; i < h_ * n_; ++i) p[i] = rng::uniform(gen, -s_in, s_in);
  for (std::size_t i = 0; i < h_; ++i) p[h_ * n_ + i] = 0;
  for (std::size_t layer = 1; layer < depth_; ++layer) {
    Real* w = params_.data() + w_offset(layer);
    for (std::size_t i = 0; i < h_ * h_; ++i)
      w[i] = rng::uniform(gen, -s_hid, s_hid);
    Real* b = params_.data() + b_offset(layer);
    for (std::size_t i = 0; i < h_; ++i) b[i] = 0;
  }
  Real* w = params_.data() + w_out_offset();
  for (std::size_t i = 0; i < n_ * h_; ++i)
    w[i] = rng::uniform(gen, -s_hid, s_hid);
  Real* b = params_.data() + b_out_offset();
  for (std::size_t i = 0; i < n_; ++i) b[i] = 0;
}

void DeepMade::masked_weight(std::size_t layer, Matrix& out) const {
  const Real* w = params_.data() + w_offset(layer);
  if (layer == 0) {
    out = Matrix(h_, n_);
    for (std::size_t i = 0; i < h_ * n_; ++i)
      out.data()[i] = input_mask_.data()[i] * w[i];
  } else {
    out = Matrix(h_, h_);
    for (std::size_t i = 0; i < h_ * h_; ++i)
      out.data()[i] = hidden_mask_.data()[i] * w[i];
  }
}

void DeepMade::masked_output_weight(Matrix& out) const {
  const Real* w = params_.data() + w_out_offset();
  out = Matrix(n_, h_);
  for (std::size_t i = 0; i < n_ * h_; ++i)
    out.data()[i] = output_mask_.data()[i] * w[i];
}

void DeepMade::forward(const Matrix& batch, Forward& f) const {
  VQMC_REQUIRE(batch.cols() == n_, "DeepMADE: batch has wrong spin count");
  const std::size_t bs = batch.rows();
  f.pre.assign(depth_, Matrix());
  f.post.assign(depth_, Matrix());

  Matrix w;
  for (std::size_t layer = 0; layer < depth_; ++layer) {
    masked_weight(layer, w);
    f.pre[layer] = Matrix(bs, h_);
    gemm_nt(layer == 0 ? batch : f.post[layer - 1], w, f.pre[layer]);
    add_row_broadcast(f.pre[layer],
                      std::span<const Real>(params_.data() + b_offset(layer), h_));
    f.post[layer] = f.pre[layer];
    relu_inplace(f.post[layer]);
  }
  masked_output_weight(w);
  f.p = Matrix(bs, n_);
  gemm_nt(f.post[depth_ - 1], w, f.p);
  add_row_broadcast(f.p,
                    std::span<const Real>(params_.data() + b_out_offset(), n_));
  sigmoid_inplace(f.p);
}

void DeepMade::conditionals(const Matrix& batch, Matrix& out) const {
  Forward f;
  forward(batch, f);
  out = std::move(f.p);
}

void DeepMade::log_psi(const Matrix& batch, std::span<Real> out) const {
  VQMC_REQUIRE(out.size() == batch.rows(), "DeepMADE: output size mismatch");
  Forward f;
  forward(batch, f);
  const std::size_t bs = batch.rows();
#pragma omp parallel for schedule(static)
  for (std::size_t k = 0; k < bs; ++k) {
    Real log_pi = 0;
    const Real* x = batch.row(k).data();
    const Real* p = f.p.row(k).data();
    for (std::size_t i = 0; i < n_; ++i)
      log_pi += x[i] * clamped_log(p[i]) + (1 - x[i]) * clamped_log(1 - p[i]);
    out[k] = log_pi / 2;
  }
}

void DeepMade::accumulate_log_psi_gradient(const Matrix& batch,
                                           std::span<const Real> coeff,
                                           std::span<Real> grad) const {
  const std::size_t bs = batch.rows();
  VQMC_REQUIRE(coeff.size() == bs, "DeepMADE: coefficient size mismatch");
  VQMC_REQUIRE(grad.size() == num_parameters(),
               "DeepMADE: gradient size mismatch");

  Forward f;
  forward(batch, f);

  // Output-layer gradient signal.
  Matrix g_out(bs, n_);
#pragma omp parallel for schedule(static)
  for (std::size_t k = 0; k < bs; ++k) {
    const Real* x = batch.row(k).data();
    const Real* p = f.p.row(k).data();
    Real* g = g_out.row(k).data();
    const Real c = coeff[k] / 2;
    for (std::size_t i = 0; i < n_; ++i) g[i] = c * (x[i] - p[i]);
  }

  // Output layer: dW_out = mask .* (g_out^T H_last), db_out = col sums.
  {
    Matrix dw(n_, h_);
    gemm_tn_accumulate(g_out, f.post[depth_ - 1], dw);
    Real* gw = grad.data() + w_out_offset();
    for (std::size_t i = 0; i < n_ * h_; ++i)
      gw[i] += output_mask_.data()[i] * dw.data()[i];
    column_sum_accumulate(g_out, grad.subspan(b_out_offset(), n_));
  }

  // Back through hidden layers.
  Matrix w_out_m;
  masked_output_weight(w_out_m);
  Matrix g(bs, h_);
  gemm_nn(g_out, w_out_m, g);
  for (std::size_t layer = depth_; layer-- > 0;) {
    relu_backward_inplace(f.pre[layer], g);
    const Matrix& input = layer == 0 ? batch : f.post[layer - 1];
    const std::size_t in_dim = layer == 0 ? n_ : h_;
    Matrix dw(h_, in_dim);
    gemm_tn_accumulate(g, input, dw);
    const Matrix& mask = layer == 0 ? input_mask_ : hidden_mask_;
    Real* gw = grad.data() + w_offset(layer);
    for (std::size_t i = 0; i < h_ * in_dim; ++i)
      gw[i] += mask.data()[i] * dw.data()[i];
    column_sum_accumulate(g, grad.subspan(b_offset(layer), h_));

    if (layer > 0) {
      Matrix w_m;
      masked_weight(layer, w_m);
      Matrix g_prev(bs, h_);
      gemm_nn(g, w_m, g_prev);
      g = std::move(g_prev);
    }
  }
}

void DeepMade::log_psi_gradient_per_sample(const Matrix& batch,
                                           Matrix& out) const {
  // Depth-general per-sample gradients reuse the batch machinery one sample
  // at a time. O(bs) small forward passes — fine for the SR experiments
  // this model participates in (SR is quadratic in d anyway).
  const std::size_t bs = batch.rows();
  const std::size_t d = num_parameters();
  VQMC_REQUIRE(out.rows() == bs && out.cols() == d,
               "DeepMADE: per-sample gradient shape mismatch");
  Matrix single(1, n_);
  Vector coeff(1);
  coeff[0] = 1;
  for (std::size_t k = 0; k < bs; ++k) {
    auto src = batch.row(k);
    std::copy(src.begin(), src.end(), single.row(0).begin());
    auto dst = out.row(k);
    std::fill(dst.begin(), dst.end(), Real(0));
    accumulate_log_psi_gradient(single, coeff.span(), dst);
  }
}

}  // namespace vqmc
