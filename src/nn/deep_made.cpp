#include "nn/deep_made.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "tensor/kernels.hpp"

namespace vqmc {

namespace {
constexpr Real kProbEps = 1e-12;
}  // namespace

DeepMade::DeepMade(std::size_t n, std::size_t hidden, std::size_t depth)
    : n_(n),
      h_(hidden),
      depth_(depth),
      params_(hidden * n + hidden +                       // first layer
              (depth - 1) * (hidden * hidden + hidden) +  // deeper layers
              n * hidden + n),                            // output layer
      degrees_(hidden),
      input_mask_(hidden, n),
      hidden_mask_(hidden, hidden),
      output_mask_(n, hidden) {
  VQMC_REQUIRE(n_ >= 2, "DeepMADE: need at least 2 spins");
  VQMC_REQUIRE(h_ >= 1, "DeepMADE: hidden size must be positive");
  VQMC_REQUIRE(depth_ >= 1, "DeepMADE: depth must be >= 1");

  for (std::size_t k = 0; k < h_; ++k) degrees_[k] = 1 + (k % (n_ - 1));
  for (std::size_t k = 0; k < h_; ++k) {
    for (std::size_t j = 0; j < n_; ++j)
      input_mask_(k, j) = (j + 1 <= degrees_[k]) ? 1 : 0;
    for (std::size_t j = 0; j < h_; ++j)
      hidden_mask_(k, j) = (degrees_[k] >= degrees_[j]) ? 1 : 0;
    for (std::size_t i = 0; i < n_; ++i)
      output_mask_(i, k) = (i + 1 > degrees_[k]) ? 1 : 0;
  }
  input_ext_ = RowExtents::from_mask(input_mask_);
  hidden_ext_ = RowExtents::from_mask(hidden_mask_);
  output_ext_ = RowExtents::from_mask(output_mask_);
  initialize(0);
}

std::size_t DeepMade::w_offset(std::size_t layer) const {
  VQMC_ASSERT(layer < depth_, "DeepMADE: layer out of range");
  if (layer == 0) return 0;
  return h_ * n_ + h_ + (layer - 1) * (h_ * h_ + h_);
}

std::size_t DeepMade::b_offset(std::size_t layer) const {
  return w_offset(layer) + (layer == 0 ? h_ * n_ : h_ * h_);
}

std::size_t DeepMade::w_out_offset() const {
  return h_ * n_ + h_ + (depth_ - 1) * (h_ * h_ + h_);
}

std::size_t DeepMade::b_out_offset() const { return w_out_offset() + n_ * h_; }

void DeepMade::initialize(std::uint64_t seed) {
  rng::Xoshiro256 gen(seed ^ 0x444d414445ULL);  // "DMADE"
  Real* p = params_.data();
  const Real s_in = 1 / std::sqrt(Real(n_));
  const Real s_hid = 1 / std::sqrt(Real(h_));
  for (std::size_t i = 0; i < h_ * n_; ++i) p[i] = rng::uniform(gen, -s_in, s_in);
  for (std::size_t i = 0; i < h_; ++i) p[h_ * n_ + i] = 0;
  for (std::size_t layer = 1; layer < depth_; ++layer) {
    Real* w = params_.data() + w_offset(layer);
    for (std::size_t i = 0; i < h_ * h_; ++i)
      w[i] = rng::uniform(gen, -s_hid, s_hid);
    Real* b = params_.data() + b_offset(layer);
    for (std::size_t i = 0; i < h_; ++i) b[i] = 0;
  }
  Real* w = params_.data() + w_out_offset();
  for (std::size_t i = 0; i < n_ * h_; ++i)
    w[i] = rng::uniform(gen, -s_hid, s_hid);
  Real* b = params_.data() + b_out_offset();
  for (std::size_t i = 0; i < n_; ++i) b[i] = 0;
  version_.bump();
}

std::shared_ptr<const DeepMade::MaskedWeights> DeepMade::masked() const {
  const std::uint64_t v = version_.value();
  return cache_.fetch(v, [&] {
    auto mw = std::make_shared<MaskedWeights>();
    mw->version = v;
    mw->w.resize(depth_);
    mw->wp.resize(depth_);
    for (std::size_t layer = 0; layer < depth_; ++layer) {
      const std::size_t in_dim = layer == 0 ? n_ : h_;
      const RowExtentsView ext = layer_extents(layer).view();
      const Real* src = params_.data() + w_offset(layer);
      mw->w[layer] = Matrix(h_, in_dim);  // zero-initialized
#pragma omp parallel for schedule(static)
      for (std::size_t r = 0; r < h_; ++r) {
        Real* dst = mw->w[layer].row(r).data();
        const Real* s = src + r * in_dim;
        for (const ColSpan span : ext.row(r))
          for (std::size_t j = span.begin; j < span.end; ++j) dst[j] = s[j];
      }
      mw->wp[layer] = PackedRowPanels::pack(mw->w[layer], ext);
    }
    const RowExtentsView ext = output_ext_.view();
    const Real* src = params_.data() + w_out_offset();
    mw->w_out = Matrix(n_, h_);
#pragma omp parallel for schedule(static)
    for (std::size_t r = 0; r < n_; ++r) {
      Real* dst = mw->w_out.row(r).data();
      const Real* s = src + r * h_;
      for (const ColSpan span : ext.row(r))
        for (std::size_t j = span.begin; j < span.end; ++j) dst[j] = s[j];
    }
    mw->w_out_p = PackedRowPanels::pack(mw->w_out, ext);
    return mw;
  });
}

void DeepMade::forward(const Matrix& batch, const MaskedWeights& mw,
                       Workspace& ws, Matrix& p) const {
  VQMC_REQUIRE(batch.cols() == n_, "DeepMADE: batch has wrong spin count");
  const std::size_t bs = batch.rows();
  ws.pre.resize(depth_);
  ws.post.resize(depth_);

  for (std::size_t layer = 0; layer < depth_; ++layer) {
    ensure_shape(ws.pre[layer], bs, h_);
    gemm_nt_panels(layer == 0 ? batch : ws.post[layer - 1],
                   layer_extents(layer).view(), mw.wp[layer], ws.pre[layer]);
    add_row_broadcast(ws.pre[layer],
                      std::span<const Real>(params_.data() + b_offset(layer), h_));
    ws.post[layer] = ws.pre[layer];
    relu_inplace(ws.post[layer]);
  }
  ensure_shape(p, bs, n_);
  gemm_nt_panels(ws.post[depth_ - 1], output_ext_.view(), mw.w_out_p, p);
  add_row_broadcast(p,
                    std::span<const Real>(params_.data() + b_out_offset(), n_));
  sigmoid_inplace(p);
}

void DeepMade::conditionals(const Matrix& batch, Matrix& out) const {
  const std::shared_ptr<const MaskedWeights> mw = masked();
  Workspace ws;
  forward(batch, *mw, ws, out);
}

void DeepMade::log_psi(const Matrix& batch, std::span<Real> out,
                       Workspace& ws) const {
  VQMC_REQUIRE(out.size() == batch.rows(), "DeepMADE: output size mismatch");
  const std::shared_ptr<const MaskedWeights> mw = masked();
  forward(batch, *mw, ws, ws.p);
  const std::size_t bs = batch.rows();
#pragma omp parallel for schedule(static)
  for (std::size_t k = 0; k < bs; ++k) {
    out[k] = bernoulli_log_likelihood(batch.row(k), ws.p.row(k).data(),
                                      kProbEps) / 2;
  }
}

void DeepMade::log_psi(const Matrix& batch, std::span<Real> out) const {
  Workspace ws;
  log_psi(batch, out, ws);
}

void DeepMade::accumulate_log_psi_gradient(const Matrix& batch,
                                           std::span<const Real> coeff,
                                           std::span<Real> grad,
                                           Workspace& ws) const {
  const std::size_t bs = batch.rows();
  VQMC_REQUIRE(coeff.size() == bs, "DeepMADE: coefficient size mismatch");
  VQMC_REQUIRE(grad.size() == num_parameters(),
               "DeepMADE: gradient size mismatch");

  const std::shared_ptr<const MaskedWeights> mw = masked();
  forward(batch, *mw, ws, ws.p);

  // Output-layer gradient signal.
  ensure_shape(ws.g_out, bs, n_);
#pragma omp parallel for schedule(static)
  for (std::size_t k = 0; k < bs; ++k) {
    const Real* x = batch.row(k).data();
    const Real* p = ws.p.row(k).data();
    Real* g = ws.g_out.row(k).data();
    const Real c = coeff[k] / 2;
    for (std::size_t i = 0; i < n_; ++i) g[i] = c * (x[i] - p[i]);
  }

  // Output layer: weight gradient only inside the mask extents.
  {
    const RowExtentsView ext = output_ext_.view();
    ensure_shape(ws.dw, n_, h_);
    extents_zero(ws.dw, ext);
    gemm_tn_accumulate_extents(ws.g_out, ws.post[depth_ - 1], ext, ws.dw);
    extents_add_flat(ws.dw, ext, grad.subspan(w_out_offset(), n_ * h_));
    column_sum_accumulate(ws.g_out, grad.subspan(b_out_offset(), n_));
  }

  // Back through hidden layers.
  ensure_shape(ws.g, bs, h_);
  gemm_nn_extents(ws.g_out, mw->w_out, output_ext_.view(), ws.g);
  for (std::size_t layer = depth_; layer-- > 0;) {
    relu_backward_inplace(ws.pre[layer], ws.g);
    const Matrix& input = layer == 0 ? batch : ws.post[layer - 1];
    const std::size_t in_dim = layer == 0 ? n_ : h_;
    const RowExtentsView ext = layer_extents(layer).view();
    ensure_shape(ws.dw, h_, in_dim);
    extents_zero(ws.dw, ext);
    gemm_tn_accumulate_extents(ws.g, input, ext, ws.dw);
    extents_add_flat(ws.dw, ext, grad.subspan(w_offset(layer), h_ * in_dim));
    column_sum_accumulate(ws.g, grad.subspan(b_offset(layer), h_));

    if (layer > 0) {
      ensure_shape(ws.g_prev, bs, h_);
      gemm_nn_extents(ws.g, mw->w[layer], ext, ws.g_prev);
      std::swap(ws.g, ws.g_prev);
    }
  }
}

void DeepMade::accumulate_log_psi_gradient(const Matrix& batch,
                                           std::span<const Real> coeff,
                                           std::span<Real> grad) const {
  Workspace ws;
  accumulate_log_psi_gradient(batch, coeff, grad, ws);
}

void DeepMade::log_psi_gradient_per_sample(const Matrix& batch,
                                           Matrix& out) const {
  // Depth-general per-sample gradients reuse the batch machinery one sample
  // at a time. O(bs) small forward passes — fine for the SR experiments
  // this model participates in (SR is quadratic in d anyway).
  const std::size_t bs = batch.rows();
  const std::size_t d = num_parameters();
  VQMC_REQUIRE(out.rows() == bs && out.cols() == d,
               "DeepMADE: per-sample gradient shape mismatch");
  Matrix single(1, n_);
  Vector coeff(1);
  coeff[0] = 1;
  Workspace ws;
  for (std::size_t k = 0; k < bs; ++k) {
    auto src = batch.row(k);
    std::copy(src.begin(), src.end(), single.row(0).begin());
    auto dst = out.row(k);
    std::fill(dst.begin(), dst.end(), Real(0));
    accumulate_log_psi_gradient(single, coeff.span(), dst, ws);
  }
}

// -- Workspace-aware virtual variants ----------------------------------------

void DeepMade::log_psi_ws(const Matrix& batch, std::span<Real> out,
                          WavefunctionModel::Workspace* ws) const {
  if (auto* w = dynamic_cast<Workspace*>(ws)) {
    log_psi(batch, out, *w);
  } else {
    log_psi(batch, out);
  }
}

void DeepMade::accumulate_log_psi_gradient_ws(
    const Matrix& batch, std::span<const Real> coeff, std::span<Real> grad,
    WavefunctionModel::Workspace* ws) const {
  if (auto* w = dynamic_cast<Workspace*>(ws)) {
    accumulate_log_psi_gradient(batch, coeff, grad, *w);
  } else {
    accumulate_log_psi_gradient(batch, coeff, grad);
  }
}

void DeepMade::log_psi_gradient_per_sample_ws(
    const Matrix& batch, Matrix& out, WavefunctionModel::Workspace* ws) const {
  (void)ws;  // the per-sample path owns its per-call workspace already
  log_psi_gradient_per_sample(batch, out);
}

}  // namespace vqmc
