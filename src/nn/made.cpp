#include "nn/made.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "tensor/kernels.hpp"

namespace vqmc {

namespace {

/// Conditionals are clamped away from {0,1} before logs; the gradient uses
/// the (x - p) form which needs no clamping.
constexpr Real kProbEps = 1e-12;

Real clamped_log(Real p) { return std::log(std::max(p, kProbEps)); }

}  // namespace

std::size_t made_default_hidden(std::size_t n) {
  const double logn = std::log(double(n));
  return std::max<std::size_t>(4, std::size_t(std::lround(5.0 * logn * logn)));
}

Made::Made(std::size_t n, std::size_t hidden)
    : n_(n),
      h_(hidden),
      params_(2 * hidden * n + hidden + n),
      mask1_(hidden, n),
      mask2_(n, hidden) {
  VQMC_REQUIRE(n_ >= 2, "MADE: need at least 2 spins");
  VQMC_REQUIRE(h_ >= 1, "MADE: hidden size must be positive");
  // Hidden degrees m_k cycle through 1..n-1; unit k may read inputs with
  // (1-based) index <= m_k and feeds outputs with index > m_k.
  for (std::size_t k = 0; k < h_; ++k) {
    const std::size_t mk = 1 + (k % (n_ - 1));
    for (std::size_t j = 0; j < n_; ++j) mask1_(k, j) = (j + 1 <= mk) ? 1 : 0;
    for (std::size_t i = 0; i < n_; ++i) mask2_(i, k) = (i + 1 > mk) ? 1 : 0;
  }
  initialize(0);
}

void Made::initialize(std::uint64_t seed) {
  rng::Xoshiro256 gen(seed ^ 0x4d414445ULL);  // "MADE"
  Real* p = params_.data();
  const Real s1 = 1 / std::sqrt(Real(n_));
  for (std::size_t i = 0; i < h_ * n_; ++i) p[i] = rng::uniform(gen, -s1, s1);
  p += h_ * n_;
  for (std::size_t i = 0; i < h_; ++i) p[i] = 0;  // b1
  p += h_;
  const Real s2 = 1 / std::sqrt(Real(h_));
  for (std::size_t i = 0; i < n_ * h_; ++i) p[i] = rng::uniform(gen, -s2, s2);
  p += n_ * h_;
  for (std::size_t i = 0; i < n_; ++i) p[i] = 0;  // b2
}

void Made::masked_weights(Matrix& w1m, Matrix& w2m) const {
  w1m = Matrix(h_, n_);
  w2m = Matrix(n_, h_);
  const Real* pw1 = w1();
  const Real* pw2 = w2();
  for (std::size_t i = 0; i < h_ * n_; ++i)
    w1m.data()[i] = mask1_.data()[i] * pw1[i];
  for (std::size_t i = 0; i < n_ * h_; ++i)
    w2m.data()[i] = mask2_.data()[i] * pw2[i];
}

void Made::forward(const Matrix& batch, Forward& f) const {
  VQMC_REQUIRE(batch.cols() == n_, "MADE: batch has wrong spin count");
  const std::size_t bs = batch.rows();
  Matrix w1m, w2m;
  masked_weights(w1m, w2m);

  f.a1 = Matrix(bs, h_);
  gemm_nt(batch, w1m, f.a1);
  add_row_broadcast(f.a1, std::span<const Real>(b1(), h_));
  f.h1 = f.a1;
  relu_inplace(f.h1);

  f.p = Matrix(bs, n_);
  gemm_nt(f.h1, w2m, f.p);
  add_row_broadcast(f.p, std::span<const Real>(b2(), n_));
  sigmoid_inplace(f.p);
}

void Made::conditionals(const Matrix& batch, Matrix& out) const {
  Forward f;
  forward(batch, f);
  out = std::move(f.p);
}

void Made::log_psi(const Matrix& batch, std::span<Real> out) const {
  VQMC_REQUIRE(out.size() == batch.rows(), "MADE: output size mismatch");
  Forward f;
  forward(batch, f);
  const std::size_t bs = batch.rows();
#pragma omp parallel for schedule(static)
  for (std::size_t k = 0; k < bs; ++k) {
    Real log_pi = 0;
    const Real* x = batch.row(k).data();
    const Real* p = f.p.row(k).data();
    for (std::size_t i = 0; i < n_; ++i) {
      log_pi += x[i] * clamped_log(p[i]) + (1 - x[i]) * clamped_log(1 - p[i]);
    }
    out[k] = log_pi / 2;  // psi = sqrt(pi)
  }
}

void Made::accumulate_log_psi_gradient(const Matrix& batch,
                                       std::span<const Real> coeff,
                                       std::span<Real> grad) const {
  const std::size_t bs = batch.rows();
  VQMC_REQUIRE(coeff.size() == bs, "MADE: coefficient size mismatch");
  VQMC_REQUIRE(grad.size() == num_parameters(), "MADE: gradient size mismatch");

  Forward f;
  forward(batch, f);
  Matrix w1m, w2m;
  masked_weights(w1m, w2m);

  // d(log psi)/d(a2)_{k,i} = coeff_k * (x_{k,i} - p_{k,i}) / 2.
  Matrix g2(bs, n_);
#pragma omp parallel for schedule(static)
  for (std::size_t k = 0; k < bs; ++k) {
    const Real* x = batch.row(k).data();
    const Real* p = f.p.row(k).data();
    Real* g = g2.row(k).data();
    const Real c = coeff[k] / 2;
    for (std::size_t i = 0; i < n_; ++i) g[i] = c * (x[i] - p[i]);
  }

  // Layer 2 gradients.
  Matrix dw2(n_, h_);
  gemm_tn_accumulate(g2, f.h1, dw2);
  {
    Real* gw2 = grad.data() + h_ * n_ + h_;
    for (std::size_t i = 0; i < n_ * h_; ++i)
      gw2[i] += mask2_.data()[i] * dw2.data()[i];
    column_sum_accumulate(g2, grad.subspan(h_ * n_ + h_ + n_ * h_, n_));
  }

  // Backprop to the hidden layer: g1 = (g2 W2m) .* relu'(a1).
  Matrix g1(bs, h_);
  gemm_nn(g2, w2m, g1);
  relu_backward_inplace(f.a1, g1);

  // Layer 1 gradients.
  Matrix dw1(h_, n_);
  gemm_tn_accumulate(g1, batch, dw1);
  {
    Real* gw1 = grad.data();
    for (std::size_t i = 0; i < h_ * n_; ++i)
      gw1[i] += mask1_.data()[i] * dw1.data()[i];
    column_sum_accumulate(g1, grad.subspan(h_ * n_, h_));
  }
}

void Made::log_psi_gradient_per_sample(const Matrix& batch,
                                       Matrix& out) const {
  const std::size_t bs = batch.rows();
  const std::size_t d = num_parameters();
  VQMC_REQUIRE(out.rows() == bs && out.cols() == d,
               "MADE: per-sample gradient shape mismatch");

  Forward f;
  forward(batch, f);
  Matrix w1m, w2m;
  masked_weights(w1m, w2m);

  const std::size_t off_b1 = h_ * n_;
  const std::size_t off_w2 = off_b1 + h_;
  const std::size_t off_b2 = off_w2 + n_ * h_;

#pragma omp parallel for schedule(static)
  for (std::size_t k = 0; k < bs; ++k) {
    const Real* x = batch.row(k).data();
    const Real* p = f.p.row(k).data();
    const Real* h1 = f.h1.row(k).data();
    const Real* a1 = f.a1.row(k).data();
    Real* o = out.row(k).data();
    for (std::size_t i = 0; i < d; ++i) o[i] = 0;

    // g2_i = (x_i - p_i)/2; fill b2 block and W2 block, and push back to g1.
    Real* ob2 = o + off_b2;
    Real* ow2 = o + off_w2;
    std::vector<Real> g1(h_, Real(0));
    for (std::size_t i = 0; i < n_; ++i) {
      const Real g2 = (x[i] - p[i]) / 2;
      ob2[i] = g2;
      const Real* m2row = mask2_.row(i).data();
      const Real* w2row = w2m.row(i).data();
      Real* ow2row = ow2 + i * h_;
      for (std::size_t l = 0; l < h_; ++l) {
        ow2row[l] = g2 * m2row[l] * h1[l];
        g1[l] += g2 * w2row[l];
      }
    }
    // ReLU backward + layer 1 blocks.
    Real* ob1 = o + off_b1;
    for (std::size_t l = 0; l < h_; ++l) {
      const Real g = (a1[l] > 0) ? g1[l] : 0;
      ob1[l] = g;
      const Real* m1row = mask1_.row(l).data();
      Real* ow1row = o + l * n_;
      for (std::size_t j = 0; j < n_; ++j) ow1row[j] = g * m1row[j] * x[j];
    }
  }
}

}  // namespace vqmc
