#include "nn/made.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "tensor/kernels.hpp"

namespace vqmc {

namespace {

/// Conditionals are clamped away from {0,1} before logs; the gradient uses
/// the (x - p) form which needs no clamping.
constexpr Real kProbEps = 1e-12;

}  // namespace

std::size_t made_default_hidden(std::size_t n) {
  const double logn = std::log(double(n));
  return std::max<std::size_t>(4, std::size_t(std::lround(5.0 * logn * logn)));
}

Made::Made(std::size_t n, std::size_t hidden)
    : n_(n),
      h_(hidden),
      params_(2 * hidden * n + hidden + n),
      mask1_(hidden, n),
      mask2_(n, hidden) {
  VQMC_REQUIRE(n_ >= 2, "MADE: need at least 2 spins");
  VQMC_REQUIRE(h_ >= 1, "MADE: hidden size must be positive");
  // Hidden degrees m_k cycle through 1..n-1; unit k may read inputs with
  // (1-based) index <= m_k and feeds outputs with index > m_k.
  for (std::size_t k = 0; k < h_; ++k) {
    const std::size_t mk = 1 + (k % (n_ - 1));
    for (std::size_t j = 0; j < n_; ++j) mask1_(k, j) = (j + 1 <= mk) ? 1 : 0;
    for (std::size_t i = 0; i < n_; ++i) mask2_(i, k) = (i + 1 > mk) ? 1 : 0;
  }
  plan_.build(mask1_, mask2_);
  initialize(0);
}

void Made::initialize(std::uint64_t seed) {
  rng::Xoshiro256 gen(seed ^ 0x4d414445ULL);  // "MADE"
  Real* p = params_.data();
  const Real s1 = 1 / std::sqrt(Real(n_));
  for (std::size_t i = 0; i < h_ * n_; ++i) p[i] = rng::uniform(gen, -s1, s1);
  p += h_ * n_;
  for (std::size_t i = 0; i < h_; ++i) p[i] = 0;  // b1
  p += h_;
  const Real s2 = 1 / std::sqrt(Real(h_));
  for (std::size_t i = 0; i < n_ * h_; ++i) p[i] = rng::uniform(gen, -s2, s2);
  p += n_ * h_;
  for (std::size_t i = 0; i < n_; ++i) p[i] = 0;  // b2
  version_.bump();
}

std::shared_ptr<const Made::MaskedWeights> Made::masked() const {
  const std::uint64_t v = version_.value();
  return cache_.fetch(v, [&] {
    auto mw = std::make_shared<MaskedWeights>();
    mw->version = v;
    // Matrices are zero-initialized; only the in-extent (mask == 1)
    // entries are copied, so everything outside is exactly zero.
    mw->w1m = Matrix(h_, n_);
    mw->w2m = Matrix(n_, h_);
    const Real* pw1 = w1();
    const Real* pw2 = w2();
    const RowExtentsView e1 = plan_.w1.view();
    const RowExtentsView e2 = plan_.w2.view();
#pragma omp parallel for schedule(static)
    for (std::size_t r = 0; r < h_; ++r) {
      Real* dst = mw->w1m.row(r).data();
      const Real* src = pw1 + r * n_;
      for (const ColSpan s : e1.row(r))
        for (std::size_t j = s.begin; j < s.end; ++j) dst[j] = src[j];
    }
#pragma omp parallel for schedule(static)
    for (std::size_t r = 0; r < n_; ++r) {
      Real* dst = mw->w2m.row(r).data();
      const Real* src = pw2 + r * h_;
      for (const ColSpan s : e2.row(r))
        for (std::size_t j = s.begin; j < s.end; ++j) dst[j] = src[j];
    }
    // Row panels for the forward gemms and the samplers' logit dots.
    mw->w1p = PackedRowPanels::pack(mw->w1m, e1);
    mw->w2p = PackedRowPanels::pack(mw->w2m, e2);
    // Column-packed W1 for the samplers' rank-1 update (geometry is the
    // construction-time plan_.w1_cols; only the values depend on the
    // parameter version).
    const ColPanelGeometry& cg = plan_.w1_cols;
    mw->w1_col_values = AlignedBuffer<Real>(cg.rows.size());
    Real* cv = mw->w1_col_values.data();
    const Real* w1base = mw->w1m.data();
    for (std::size_t j = 0; j < n_; ++j) {
      for (std::size_t t = cg.offsets[j]; t < cg.offsets[j + 1]; ++t)
        cv[t] = w1base[std::size_t(cg.rows[t]) * n_ + j];
    }
    return mw;
  });
}

void Made::forward(const Matrix& batch, const MaskedWeights& mw, Workspace& ws,
                   Matrix& p) const {
  VQMC_REQUIRE(batch.cols() == n_, "MADE: batch has wrong spin count");
  const std::size_t bs = batch.rows();

  // The packed-panel gemms stream the same in-extent values the extent
  // forms would read from the dense masked matrices, through the identical
  // canonical dots — but over unit-stride panels packed once per parameter
  // version.
  ensure_shape(ws.a1, bs, h_);
  gemm_nt_panels(batch, plan_.w1.view(), mw.w1p, ws.a1);
  add_row_broadcast(ws.a1, bias1());
  ws.h1 = ws.a1;
  relu_inplace(ws.h1);

  ensure_shape(p, bs, n_);
  gemm_nt_panels(ws.h1, plan_.w2.view(), mw.w2p, p);
  add_row_broadcast(p, bias2());
  sigmoid_inplace(p);
}

void Made::conditionals(const Matrix& batch, Matrix& out, Workspace& ws) const {
  const std::shared_ptr<const MaskedWeights> mw = masked();
  forward(batch, *mw, ws, out);
}

void Made::conditionals(const Matrix& batch, Matrix& out) const {
  Workspace ws;
  conditionals(batch, out, ws);
}

void Made::log_psi(const Matrix& batch, std::span<Real> out,
                   Workspace& ws) const {
  VQMC_REQUIRE(out.size() == batch.rows(), "MADE: output size mismatch");
  const std::shared_ptr<const MaskedWeights> mw = masked();
  forward(batch, *mw, ws, ws.p);
  const std::size_t bs = batch.rows();
#pragma omp parallel for schedule(static)
  for (std::size_t k = 0; k < bs; ++k) {
    // psi = sqrt(pi); for binary x the Bernoulli likelihood selects the
    // same clamped-log terms the textbook x log p + (1-x) log(1-p) adds.
    out[k] = bernoulli_log_likelihood(batch.row(k), ws.p.row(k).data(),
                                      kProbEps) / 2;
  }
}

void Made::log_psi(const Matrix& batch, std::span<Real> out) const {
  Workspace ws;
  log_psi(batch, out, ws);
}

void Made::accumulate_log_psi_gradient(const Matrix& batch,
                                       std::span<const Real> coeff,
                                       std::span<Real> grad,
                                       Workspace& ws) const {
  const std::size_t bs = batch.rows();
  VQMC_REQUIRE(coeff.size() == bs, "MADE: coefficient size mismatch");
  VQMC_REQUIRE(grad.size() == num_parameters(), "MADE: gradient size mismatch");

  const std::shared_ptr<const MaskedWeights> mw = masked();
  forward(batch, *mw, ws, ws.p);
  const RowExtentsView e1 = plan_.w1.view();
  const RowExtentsView e2 = plan_.w2.view();

  const std::size_t off_b1 = h_ * n_;
  const std::size_t off_w2 = off_b1 + h_;
  const std::size_t off_b2 = off_w2 + n_ * h_;

  // d(log psi)/d(a2)_{k,i} = coeff_k * (x_{k,i} - p_{k,i}) / 2.
  ensure_shape(ws.g2, bs, n_);
#pragma omp parallel for schedule(static)
  for (std::size_t k = 0; k < bs; ++k) {
    const Real* x = batch.row(k).data();
    const Real* p = ws.p.row(k).data();
    Real* g = ws.g2.row(k).data();
    const Real c = coeff[k] / 2;
    for (std::size_t i = 0; i < n_; ++i) g[i] = c * (x[i] - p[i]);
  }

  // Layer 2 gradients: accumulate only inside the mask extents (the mask
  // is identically 1 there, 0 elsewhere, so no mask-apply pass is needed).
  ensure_shape(ws.dw2, n_, h_);
  extents_zero(ws.dw2, e2);
  gemm_tn_accumulate_extents(ws.g2, ws.h1, e2, ws.dw2);
  extents_add_flat(ws.dw2, e2, grad.subspan(off_w2, n_ * h_));
  column_sum_accumulate(ws.g2, grad.subspan(off_b2, n_));

  // Backprop to the hidden layer: g1 = (g2 W2m) .* relu'(a1).
  ensure_shape(ws.g1, bs, h_);
  gemm_nn_extents(ws.g2, mw->w2m, e2, ws.g1);
  relu_backward_inplace(ws.a1, ws.g1);

  // Layer 1 gradients.
  ensure_shape(ws.dw1, h_, n_);
  extents_zero(ws.dw1, e1);
  gemm_tn_accumulate_extents(ws.g1, batch, e1, ws.dw1);
  extents_add_flat(ws.dw1, e1, grad.subspan(0, h_ * n_));
  column_sum_accumulate(ws.g1, grad.subspan(off_b1, h_));
}

void Made::accumulate_log_psi_gradient(const Matrix& batch,
                                       std::span<const Real> coeff,
                                       std::span<Real> grad) const {
  Workspace ws;
  accumulate_log_psi_gradient(batch, coeff, grad, ws);
}

void Made::log_psi_gradient_per_sample(const Matrix& batch, Matrix& out,
                                       Workspace& ws) const {
  const std::size_t bs = batch.rows();
  const std::size_t d = num_parameters();
  VQMC_REQUIRE(out.rows() == bs && out.cols() == d,
               "MADE: per-sample gradient shape mismatch");

  const std::shared_ptr<const MaskedWeights> mw = masked();
  forward(batch, *mw, ws, ws.p);
  const RowExtentsView e1 = plan_.w1.view();
  const RowExtentsView e2 = plan_.w2.view();

  const std::size_t off_b1 = h_ * n_;
  const std::size_t off_w2 = off_b1 + h_;
  const std::size_t off_b2 = off_w2 + n_ * h_;

#pragma omp parallel
  {
    // Hidden-layer signal, hoisted out of the row loop per thread.
    std::vector<Real> g1(h_);
#pragma omp for schedule(static)
    for (std::size_t k = 0; k < bs; ++k) {
      const Real* x = batch.row(k).data();
      const Real* p = ws.p.row(k).data();
      const Real* h1 = ws.h1.row(k).data();
      const Real* a1 = ws.a1.row(k).data();
      Real* o = out.row(k).data();
      for (std::size_t i = 0; i < d; ++i) o[i] = 0;
      std::fill(g1.begin(), g1.end(), Real(0));

      // g2_i = (x_i - p_i)/2; fill b2 block and the in-extent entries of
      // the W2 block (the rest stays zero), and push back to g1.
      Real* ob2 = o + off_b2;
      Real* ow2 = o + off_w2;
      for (std::size_t i = 0; i < n_; ++i) {
        const Real g2 = (x[i] - p[i]) / 2;
        ob2[i] = g2;
        const Real* w2row = mw->w2m.row(i).data();
        Real* ow2row = ow2 + i * h_;
        for (const ColSpan s : e2.row(i)) {
          for (std::size_t l = s.begin; l < s.end; ++l) {
            ow2row[l] = g2 * h1[l];
            g1[l] += g2 * w2row[l];
          }
        }
      }
      // ReLU backward + layer 1 blocks.
      Real* ob1 = o + off_b1;
      for (std::size_t l = 0; l < h_; ++l) {
        const Real g = (a1[l] > 0) ? g1[l] : 0;
        ob1[l] = g;
        Real* ow1row = o + l * n_;
        for (const ColSpan s : e1.row(l)) {
          for (std::size_t j = s.begin; j < s.end; ++j) ow1row[j] = g * x[j];
        }
      }
    }
  }
}

void Made::log_psi_gradient_per_sample(const Matrix& batch,
                                       Matrix& out) const {
  Workspace ws;
  log_psi_gradient_per_sample(batch, out, ws);
}

// -- Workspace-aware virtual variants ----------------------------------------

void Made::log_psi_ws(const Matrix& batch, std::span<Real> out,
                      WavefunctionModel::Workspace* ws) const {
  if (auto* w = dynamic_cast<Workspace*>(ws)) {
    log_psi(batch, out, *w);
  } else {
    log_psi(batch, out);
  }
}

void Made::accumulate_log_psi_gradient_ws(
    const Matrix& batch, std::span<const Real> coeff, std::span<Real> grad,
    WavefunctionModel::Workspace* ws) const {
  if (auto* w = dynamic_cast<Workspace*>(ws)) {
    accumulate_log_psi_gradient(batch, coeff, grad, *w);
  } else {
    accumulate_log_psi_gradient(batch, coeff, grad);
  }
}

void Made::log_psi_gradient_per_sample_ws(
    const Matrix& batch, Matrix& out, WavefunctionModel::Workspace* ws) const {
  if (auto* w = dynamic_cast<Workspace*>(ws)) {
    log_psi_gradient_per_sample(batch, out, *w);
  } else {
    log_psi_gradient_per_sample(batch, out);
  }
}

}  // namespace vqmc
