#pragma once

/// \file rnn.hpp
/// \brief Recurrent neural-network wavefunction (Hibat-Allah et al. 2020,
/// the autoregressive alternative the paper cites in Related Work).
///
/// A vanilla (Elman) recurrence over the spin sequence:
///
///   h_t = tanh(W_in e(x_{t-1}) + W_hh h_{t-1} + b_h),  h_{-1} = 0,
///   p_t = sigmoid(w_p . h_t + b_p) = p(x_t = 1 | x_{<t}),
///
/// where e(x) is the 2-dim one-hot encoding of the previous spin and the
/// first step feeds a zero vector (so p_1 is input-independent, as the
/// autoregressive factorization requires).  Like MADE the joint
/// distribution is normalized by construction and supports exact ancestral
/// sampling; unlike MADE, evaluating all conditionals takes n sequential
/// recurrence steps even for density evaluation (the trade-off the paper
/// notes for recurrent wavefunctions).
///
/// Parameter layout:
///   [ W_in (H x 2) | W_hh (H x H) | b_h (H) | w_p (H) | b_p (1) ]

#include <cstdint>
#include <vector>

#include "nn/wavefunction.hpp"

namespace vqmc {

/// Elman-RNN autoregressive wavefunction with hidden width `hidden`.
class RnnWavefunction final : public AutoregressiveModel {
 public:
  RnnWavefunction(std::size_t n, std::size_t hidden);

  // WavefunctionModel interface.
  [[nodiscard]] std::size_t num_spins() const override { return n_; }
  [[nodiscard]] std::size_t num_parameters() const override {
    return params_.size();
  }
  [[nodiscard]] std::span<Real> parameters() override { return params_.span(); }
  [[nodiscard]] std::span<const Real> parameters() const override {
    return params_.span();
  }
  void initialize(std::uint64_t seed) override;
  void log_psi(const Matrix& batch, std::span<Real> out) const override;
  void accumulate_log_psi_gradient(const Matrix& batch,
                                   std::span<const Real> coeff,
                                   std::span<Real> grad) const override;
  void log_psi_gradient_per_sample(const Matrix& batch,
                                   Matrix& out) const override;
  [[nodiscard]] std::string name() const override { return "RNN"; }
  [[nodiscard]] std::unique_ptr<WavefunctionModel> clone() const override {
    return std::make_unique<RnnWavefunction>(*this);
  }

  // AutoregressiveModel interface (teacher-forced; n recurrence steps).
  void conditionals(const Matrix& batch, Matrix& out) const override;

  [[nodiscard]] std::size_t hidden_size() const { return h_; }

 private:
  // Parameter views.
  [[nodiscard]] const Real* w_in() const { return params_.data(); }
  [[nodiscard]] const Real* w_hh() const { return params_.data() + 2 * h_; }
  [[nodiscard]] const Real* b_h() const {
    return params_.data() + 2 * h_ + h_ * h_;
  }
  [[nodiscard]] const Real* w_p() const {
    return params_.data() + 2 * h_ + h_ * h_ + h_;
  }
  [[nodiscard]] Real b_p() const {
    return params_[2 * h_ + h_ * h_ + h_ + h_];
  }

  /// Teacher-forced pass storing every hidden state: hidden[t] is bs x H.
  void forward(const Matrix& batch, std::vector<Matrix>& hidden,
               Matrix& p) const;

  std::size_t n_;
  std::size_t h_;
  Vector params_;
};

}  // namespace vqmc
