#include "nn/rbm.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "tensor/kernels.hpp"

namespace vqmc {

Rbm::Rbm(std::size_t n, std::size_t hidden)
    : n_(n), h_(hidden), params_(hidden * n + hidden + n + 1) {
  VQMC_REQUIRE(n_ >= 1, "RBM: need at least 1 spin");
  VQMC_REQUIRE(h_ >= 1, "RBM: hidden size must be positive");
  initialize(0);
}

void Rbm::initialize(std::uint64_t seed) {
  rng::Xoshiro256 gen(seed ^ 0x52424dULL);  // "RBM"
  Real* p = params_.data();
  // Small random weights keep log cosh in its quadratic regime initially,
  // which approximates a near-uniform distribution (good starting point).
  const Real s = Real(0.05) / std::sqrt(Real(n_));
  for (std::size_t i = 0; i < h_ * n_; ++i) p[i] = rng::uniform(gen, -s, s);
  p += h_ * n_;
  for (std::size_t i = 0; i < h_; ++i) p[i] = rng::uniform(gen, -0.01, 0.01);
  p += h_;
  for (std::size_t i = 0; i < n_; ++i) p[i] = rng::uniform(gen, -0.01, 0.01);
  p += n_;
  p[0] = 0;  // a0
}

void Rbm::hidden_preactivations(const Matrix& batch, Matrix& theta) const {
  VQMC_REQUIRE(batch.cols() == n_, "RBM: batch has wrong spin count");
  const std::size_t bs = batch.rows();
  // View the flat W block as an h x n matrix (copy; gemm needs Matrix).
  Matrix wm(h_, n_);
  std::copy_n(w(), h_ * n_, wm.data());
  theta = Matrix(bs, h_);
  gemm_nt(batch, wm, theta);
  add_row_broadcast(theta, std::span<const Real>(c(), h_));
}

void Rbm::log_psi(const Matrix& batch, std::span<Real> out) const {
  VQMC_REQUIRE(out.size() == batch.rows(), "RBM: output size mismatch");
  Matrix theta;
  hidden_preactivations(batch, theta);
  const std::size_t bs = batch.rows();
  const Real* pa = a();
  const Real bias0 = a0();
#pragma omp parallel for schedule(static)
  for (std::size_t k = 0; k < bs; ++k) {
    const Real* th = theta.row(k).data();
    Real acc = bias0;
    for (std::size_t l = 0; l < h_; ++l) acc += log_cosh(th[l]);
    const Real* x = batch.row(k).data();
    for (std::size_t j = 0; j < n_; ++j) acc += pa[j] * x[j];
    out[k] = acc;
  }
}

void Rbm::accumulate_log_psi_gradient(const Matrix& batch,
                                      std::span<const Real> coeff,
                                      std::span<Real> grad) const {
  const std::size_t bs = batch.rows();
  VQMC_REQUIRE(coeff.size() == bs, "RBM: coefficient size mismatch");
  VQMC_REQUIRE(grad.size() == num_parameters(), "RBM: gradient size mismatch");

  Matrix theta;
  hidden_preactivations(batch, theta);

  // t(k, l) = coeff_k * tanh(theta_{k,l}) — the per-hidden-unit gradients.
  Matrix t(bs, h_);
#pragma omp parallel for schedule(static)
  for (std::size_t k = 0; k < bs; ++k) {
    const Real* th = theta.row(k).data();
    Real* tr = t.row(k).data();
    for (std::size_t l = 0; l < h_; ++l) tr[l] = coeff[k] * std::tanh(th[l]);
  }

  // dW = t^T X, dc = column sums of t.
  Matrix dw(h_, n_);
  gemm_tn_accumulate(t, batch, dw);
  for (std::size_t i = 0; i < h_ * n_; ++i) grad[i] += dw.data()[i];
  column_sum_accumulate(t, grad.subspan(h_ * n_, h_));

  // da_j = sum_k coeff_k x_{k,j}; da0 = sum_k coeff_k.
  Real* ga = grad.data() + h_ * n_ + h_;
  Real c_sum = 0;
  for (std::size_t k = 0; k < bs; ++k) {
    const Real* x = batch.row(k).data();
    const Real ck = coeff[k];
    c_sum += ck;
    for (std::size_t j = 0; j < n_; ++j) ga[j] += ck * x[j];
  }
  grad[h_ * n_ + h_ + n_] += c_sum;
}

void Rbm::log_psi_gradient_per_sample(const Matrix& batch, Matrix& out) const {
  const std::size_t bs = batch.rows();
  const std::size_t d = num_parameters();
  VQMC_REQUIRE(out.rows() == bs && out.cols() == d,
               "RBM: per-sample gradient shape mismatch");
  Matrix theta;
  hidden_preactivations(batch, theta);

  const std::size_t off_c = h_ * n_;
  const std::size_t off_a = off_c + h_;
  const std::size_t off_a0 = off_a + n_;

#pragma omp parallel for schedule(static)
  for (std::size_t k = 0; k < bs; ++k) {
    const Real* x = batch.row(k).data();
    const Real* th = theta.row(k).data();
    Real* o = out.row(k).data();
    for (std::size_t l = 0; l < h_; ++l) {
      const Real tl = std::tanh(th[l]);
      o[off_c + l] = tl;
      Real* row = o + l * n_;
      for (std::size_t j = 0; j < n_; ++j) row[j] = tl * x[j];
    }
    for (std::size_t j = 0; j < n_; ++j) o[off_a + j] = x[j];
    o[off_a0] = 1;
  }
}

}  // namespace vqmc
