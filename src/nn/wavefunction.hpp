#pragma once

/// \file wavefunction.hpp
/// \brief Trial-wavefunction model interfaces.
///
/// A wavefunction model is a differentiable map theta -> psi_theta from
/// parameters to amplitudes psi_theta(x) over n-bit configurations.  The
/// library targets non-negative ground states (Perron–Frobenius, Section 2.1
/// of the paper), so models expose log |psi| directly.
///
/// Two families:
///  * `WavefunctionModel` — anything with log psi and gradients (RBM).
///    Generally unnormalized; sampling requires MCMC.
///  * `AutoregressiveModel` — additionally factorizes pi(x) = psi(x)^2 as a
///    product of conditionals computable in one forward pass (MADE), which
///    enables exact AUTO sampling and makes the model normalized.

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "tensor/matrix.hpp"
#include "tensor/vector.hpp"

namespace vqmc {

/// Differentiable trial wavefunction over n spins.
///
/// Parameters are exposed as one flat vector so optimizers and communicators
/// can treat every model uniformly (the paper's allreduce averages this flat
/// gradient of length d = 2hn + h + n for MADE).
class WavefunctionModel {
 public:
  virtual ~WavefunctionModel() = default;

  /// Opaque caller-owned evaluation scratch.  Models that allocate
  /// per-call temporaries (the MADE family's activation and gradient
  /// matrices) can reuse them across calls when the caller threads one of
  /// these through the `*_ws` evaluation variants.  A workspace may be used
  /// by one call at a time; per-thread workspaces keep the const-method
  /// concurrency contract intact (the scratch moves from the callee's stack
  /// to the caller, it never becomes shared model state).
  class Workspace {
   public:
    virtual ~Workspace() = default;
  };

  /// Reusable scratch for the `*_ws` paths; null when the model has none
  /// (then the `*_ws` variants simply forward to the plain calls).
  [[nodiscard]] virtual std::unique_ptr<Workspace> make_workspace() const {
    return nullptr;
  }

  [[nodiscard]] virtual std::size_t num_spins() const = 0;
  [[nodiscard]] virtual std::size_t num_parameters() const = 0;

  /// Mutable parameter access is the write path: models with derived-state
  /// caches (masked_plan.hpp) treat every call as a potential write.
  /// Re-acquire the span before each round of writes — do not cache it
  /// across evaluations.
  [[nodiscard]] virtual std::span<Real> parameters() = 0;
  [[nodiscard]] virtual std::span<const Real> parameters() const = 0;

  /// Random parameter initialization (uniform +- 1/sqrt(fan_in) per layer).
  virtual void initialize(std::uint64_t seed) = 0;

  /// log |psi_theta(x_k)| for each row x_k of the batch (bs x n) into
  /// `out` (length bs).
  virtual void log_psi(const Matrix& batch, std::span<Real> out) const = 0;

  /// grad += sum_k coeff[k] * d(log psi(x_k))/d(theta).
  /// This single primitive implements the energy gradient of Eq. 5: pass
  /// coeff[k] = 2 (l_k - L) / bs.
  virtual void accumulate_log_psi_gradient(const Matrix& batch,
                                           std::span<const Real> coeff,
                                           std::span<Real> grad) const = 0;

  /// Per-sample log-derivatives O(k, :) = d(log psi(x_k))/d(theta), the
  /// ingredients of the Fisher/SR matrix (Eq. 5).  `out` must be bs x d.
  virtual void log_psi_gradient_per_sample(const Matrix& batch,
                                           Matrix& out) const = 0;

  // -- Workspace-aware variants ----------------------------------------------
  // Identical results to the plain calls; `ws` (from make_workspace(), may
  // be null) lets the model reuse its evaluation scratch instead of
  // allocating it per call.  The trainer and the local-energy engine route
  // their per-iteration evaluations through these.

  virtual void log_psi_ws(const Matrix& batch, std::span<Real> out,
                          Workspace* ws) const {
    (void)ws;
    log_psi(batch, out);
  }
  virtual void accumulate_log_psi_gradient_ws(const Matrix& batch,
                                              std::span<const Real> coeff,
                                              std::span<Real> grad,
                                              Workspace* ws) const {
    (void)ws;
    accumulate_log_psi_gradient(batch, coeff, grad);
  }
  virtual void log_psi_gradient_per_sample_ws(const Matrix& batch, Matrix& out,
                                              Workspace* ws) const {
    (void)ws;
    log_psi_gradient_per_sample(batch, out);
  }

  /// True if sum_x psi(x)^2 == 1 by construction.
  [[nodiscard]] virtual bool is_normalized() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Deep copy (used to replicate the model across virtual devices).
  [[nodiscard]] virtual std::unique_ptr<WavefunctionModel> clone() const = 0;
};

/// Wavefunction whose Born distribution factorizes autoregressively
/// (Eq. 7): pi(x) = prod_i p_i(x_i | x_{<i}).
class AutoregressiveModel : public WavefunctionModel {
 public:
  /// All conditionals in one forward pass (the MADE trick): out(k, i) =
  /// p(x_i = 1 | x_{k,1}, ..., x_{k,i-1}).  Only entries j < i of row k
  /// influence out(k, i) — the autoregressive property, which tests verify.
  virtual void conditionals(const Matrix& batch, Matrix& out) const = 0;

  [[nodiscard]] bool is_normalized() const final { return true; }
};

}  // namespace vqmc
