#pragma once

/// \file deep_made.hpp
/// \brief Depth-generalized MADE: an arbitrary stack of masked hidden
/// layers.
///
/// The paper's production architecture uses a single masked hidden layer
/// (see made.hpp); deeper stacks are the natural capacity extension the
/// original MADE paper (Germain et al. 2015) describes.  Masks between
/// hidden layers connect unit k (degree m_k) to unit j of the previous
/// layer (degree m'_j) iff m_k >= m'_j, which preserves the autoregressive
/// property through any depth; the same normalization / exact-sampling
/// guarantees as the shallow model follow.
///
/// Parameter layout:
///   [ W_1 (h x n) | b_1 (h) | W_2..W_D (h x h) | b_2..b_D (h) each
///     | W_out (n x h) | b_out (n) ]

#include <cstdint>
#include <vector>

#include "nn/wavefunction.hpp"

namespace vqmc {

/// MADE with `depth` masked hidden layers of width `hidden`.
class DeepMade final : public AutoregressiveModel {
 public:
  /// \param n number of spins (>= 2)
  /// \param hidden hidden width (>= 1)
  /// \param depth number of hidden layers (>= 1; depth 1 == Made)
  DeepMade(std::size_t n, std::size_t hidden, std::size_t depth);

  // WavefunctionModel interface.
  [[nodiscard]] std::size_t num_spins() const override { return n_; }
  [[nodiscard]] std::size_t num_parameters() const override {
    return params_.size();
  }
  [[nodiscard]] std::span<Real> parameters() override { return params_.span(); }
  [[nodiscard]] std::span<const Real> parameters() const override {
    return params_.span();
  }
  void initialize(std::uint64_t seed) override;
  void log_psi(const Matrix& batch, std::span<Real> out) const override;
  void accumulate_log_psi_gradient(const Matrix& batch,
                                   std::span<const Real> coeff,
                                   std::span<Real> grad) const override;
  void log_psi_gradient_per_sample(const Matrix& batch,
                                   Matrix& out) const override;
  [[nodiscard]] std::string name() const override { return "DeepMADE"; }
  [[nodiscard]] std::unique_ptr<WavefunctionModel> clone() const override {
    return std::make_unique<DeepMade>(*this);
  }

  // AutoregressiveModel interface.
  void conditionals(const Matrix& batch, Matrix& out) const override;

  [[nodiscard]] std::size_t hidden_size() const { return h_; }
  [[nodiscard]] std::size_t depth() const { return depth_; }

 private:
  struct Forward {
    std::vector<Matrix> pre;   ///< pre-ReLU activations per hidden layer
    std::vector<Matrix> post;  ///< post-ReLU activations per hidden layer
    Matrix p;                  ///< conditionals
  };

  // Offsets into the flat parameter vector.
  [[nodiscard]] std::size_t w_offset(std::size_t layer) const;
  [[nodiscard]] std::size_t b_offset(std::size_t layer) const;
  [[nodiscard]] std::size_t w_out_offset() const;
  [[nodiscard]] std::size_t b_out_offset() const;

  /// Masked weight of hidden layer `layer` (0-based) and of the output.
  void masked_weight(std::size_t layer, Matrix& out) const;
  void masked_output_weight(Matrix& out) const;

  void forward(const Matrix& batch, Forward& f) const;

  std::size_t n_;
  std::size_t h_;
  std::size_t depth_;
  Vector params_;
  std::vector<std::size_t> degrees_;  ///< hidden-unit degrees (shared by layers)
  Matrix input_mask_;                 ///< h x n
  Matrix hidden_mask_;                ///< h x h (between hidden layers)
  Matrix output_mask_;                ///< n x h
};

}  // namespace vqmc
