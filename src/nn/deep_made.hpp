#pragma once

/// \file deep_made.hpp
/// \brief Depth-generalized MADE: an arbitrary stack of masked hidden
/// layers.
///
/// The paper's production architecture uses a single masked hidden layer
/// (see made.hpp); deeper stacks are the natural capacity extension the
/// original MADE paper (Germain et al. 2015) describes.  Masks between
/// hidden layers connect unit k (degree m_k) to unit j of the previous
/// layer (degree m'_j) iff m_k >= m'_j, which preserves the autoregressive
/// property through any depth; the same normalization / exact-sampling
/// guarantees as the shallow model follow.
///
/// Parameter layout:
///   [ W_1 (h x n) | b_1 (h) | W_2..W_D (h x h) | b_2..b_D (h) each
///     | W_out (n x h) | b_out (n) ]
///
/// Like Made, evaluation runs through the masked compute plan (DESIGN.md
/// §5f): per-mask RowExtents built once at construction drive the
/// extent-aware kernels, and the masked weight matrices are cached behind
/// the parameter version counter instead of re-materialized per call.  The
/// same thread-safety and mutable-span rules as made.hpp apply.

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/masked_plan.hpp"
#include "nn/wavefunction.hpp"

namespace vqmc {

/// MADE with `depth` masked hidden layers of width `hidden`.
class DeepMade final : public AutoregressiveModel {
 public:
  /// \param n number of spins (>= 2)
  /// \param hidden hidden width (>= 1)
  /// \param depth number of hidden layers (>= 1; depth 1 == Made)
  DeepMade(std::size_t n, std::size_t hidden, std::size_t depth);

  /// Immutable packed masked weights for one parameter version, plus the
  /// row panels the forward's gemm_nt_panels streams over (packed once per
  /// parameter write alongside the matrices).
  struct MaskedWeights {
    std::vector<Matrix> w;  ///< per hidden layer: h x n (layer 0) or h x h
    Matrix w_out;           ///< n x h
    std::vector<PackedRowPanels> wp;  ///< per hidden layer, row-packed
    PackedRowPanels w_out_p;          ///< output layer, row-packed
    std::uint64_t version = 0;
  };

  /// Caller-owned evaluation scratch (activations + gradient temporaries).
  struct Workspace final : WavefunctionModel::Workspace {
    std::vector<Matrix> pre;   ///< pre-ReLU activations per hidden layer
    std::vector<Matrix> post;  ///< post-ReLU activations per hidden layer
    Matrix p;                  ///< conditionals
    Matrix g_out;              ///< output-layer signal
    Matrix g;                  ///< backprop signal (current layer)
    Matrix g_prev;             ///< backprop signal (previous layer)
    Matrix dw;                 ///< weight-gradient scratch
  };

  [[nodiscard]] std::unique_ptr<WavefunctionModel::Workspace> make_workspace()
      const override {
    return std::make_unique<Workspace>();
  }

  // WavefunctionModel interface.
  [[nodiscard]] std::size_t num_spins() const override { return n_; }
  [[nodiscard]] std::size_t num_parameters() const override {
    return params_.size();
  }
  [[nodiscard]] std::span<Real> parameters() override {
    version_.bump();
    return params_.span();
  }
  [[nodiscard]] std::span<const Real> parameters() const override {
    return params_.span();
  }
  void initialize(std::uint64_t seed) override;
  void log_psi(const Matrix& batch, std::span<Real> out) const override;
  void accumulate_log_psi_gradient(const Matrix& batch,
                                   std::span<const Real> coeff,
                                   std::span<Real> grad) const override;
  void log_psi_gradient_per_sample(const Matrix& batch,
                                   Matrix& out) const override;
  [[nodiscard]] std::string name() const override { return "DeepMADE"; }
  [[nodiscard]] std::unique_ptr<WavefunctionModel> clone() const override {
    return std::make_unique<DeepMade>(*this);
  }

  // Workspace-aware variants (identical results, reused scratch).
  void log_psi_ws(const Matrix& batch, std::span<Real> out,
                  WavefunctionModel::Workspace* ws) const override;
  void accumulate_log_psi_gradient_ws(const Matrix& batch,
                                      std::span<const Real> coeff,
                                      std::span<Real> grad,
                                      WavefunctionModel::Workspace* ws)
      const override;
  void log_psi_gradient_per_sample_ws(const Matrix& batch, Matrix& out,
                                      WavefunctionModel::Workspace* ws)
      const override;

  // Concrete-type overloads for callers that own a DeepMade::Workspace.
  void log_psi(const Matrix& batch, std::span<Real> out, Workspace& ws) const;
  void accumulate_log_psi_gradient(const Matrix& batch,
                                   std::span<const Real> coeff,
                                   std::span<Real> grad, Workspace& ws) const;

  // AutoregressiveModel interface.
  void conditionals(const Matrix& batch, Matrix& out) const override;

  [[nodiscard]] std::size_t hidden_size() const { return h_; }
  [[nodiscard]] std::size_t depth() const { return depth_; }

  /// Packed masked weights from the version-counter cache (see made.hpp).
  [[nodiscard]] std::shared_ptr<const MaskedWeights> masked() const;
  [[nodiscard]] std::uint64_t parameter_version() const {
    return version_.value();
  }

 private:
  // Offsets into the flat parameter vector.
  [[nodiscard]] std::size_t w_offset(std::size_t layer) const;
  [[nodiscard]] std::size_t b_offset(std::size_t layer) const;
  [[nodiscard]] std::size_t w_out_offset() const;
  [[nodiscard]] std::size_t b_out_offset() const;

  /// Extents of hidden layer `layer`'s mask (input mask for layer 0).
  [[nodiscard]] const RowExtents& layer_extents(std::size_t layer) const {
    return layer == 0 ? input_ext_ : hidden_ext_;
  }

  void forward(const Matrix& batch, const MaskedWeights& mw, Workspace& ws,
               Matrix& p) const;

  std::size_t n_;
  std::size_t h_;
  std::size_t depth_;
  Vector params_;
  std::vector<std::size_t> degrees_;  ///< hidden-unit degrees (shared by layers)
  Matrix input_mask_;                 ///< h x n
  Matrix hidden_mask_;                ///< h x h (between hidden layers)
  Matrix output_mask_;                ///< n x h
  RowExtents input_ext_;
  RowExtents hidden_ext_;
  RowExtents output_ext_;
  ParamVersion version_;
  VersionedCache<MaskedWeights> cache_;
};

}  // namespace vqmc
