#include "nn/gradient_check.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "tensor/kernels.hpp"

namespace vqmc {

namespace {

/// Weighted objective sum_k coeff[k] * log psi(x_k) at the current params.
Real weighted_log_psi(const WavefunctionModel& model, const Matrix& batch,
                      std::span<const Real> coeff) {
  Vector lp(batch.rows());
  model.log_psi(batch, lp.span());
  return dot(lp.span(), coeff);
}

}  // namespace

GradientCheckResult check_log_psi_gradient(WavefunctionModel& model,
                                           const Matrix& batch,
                                           std::span<const Real> coeff,
                                           Real eps) {
  const std::size_t d = model.num_parameters();
  Vector analytic(d);
  model.accumulate_log_psi_gradient(batch, coeff, analytic.span());

  GradientCheckResult result;
  // parameters() must be re-acquired before every round of writes: the
  // mutable span is the models' cache-invalidation signal (masked_plan.hpp),
  // so writing through a span cached across evaluations would leave them
  // serving stale derived state.
  for (std::size_t i = 0; i < d; ++i) {
    const Real original = model.parameters()[i];
    model.parameters()[i] = original + eps;
    const Real plus = weighted_log_psi(model, batch, coeff);
    model.parameters()[i] = original - eps;
    const Real minus = weighted_log_psi(model, batch, coeff);
    model.parameters()[i] = original;
    const Real numeric = (plus - minus) / (2 * eps);
    const Real abs_err = std::fabs(analytic[i] - numeric);
    const Real rel_err = abs_err / std::max<Real>(1, std::fabs(numeric));
    if (abs_err > result.max_abs_error) {
      result.max_abs_error = abs_err;
      result.worst_index = i;
    }
    result.max_rel_error = std::max(result.max_rel_error, rel_err);
  }
  return result;
}

GradientCheckResult check_per_sample_gradient(WavefunctionModel& model,
                                              const Matrix& batch, Real eps) {
  const std::size_t bs = batch.rows();
  const std::size_t d = model.num_parameters();
  Matrix per_sample(bs, d);
  model.log_psi_gradient_per_sample(batch, per_sample);

  GradientCheckResult result;
  // See check_log_psi_gradient: re-acquire parameters() per write so the
  // models' version-counter caches observe every perturbation.
  Vector lp_plus(bs), lp_minus(bs);
  for (std::size_t i = 0; i < d; ++i) {
    const Real original = model.parameters()[i];
    model.parameters()[i] = original + eps;
    model.log_psi(batch, lp_plus.span());
    model.parameters()[i] = original - eps;
    model.log_psi(batch, lp_minus.span());
    model.parameters()[i] = original;
    for (std::size_t k = 0; k < bs; ++k) {
      const Real numeric = (lp_plus[k] - lp_minus[k]) / (2 * eps);
      const Real abs_err = std::fabs(per_sample(k, i) - numeric);
      const Real rel_err = abs_err / std::max<Real>(1, std::fabs(numeric));
      if (abs_err > result.max_abs_error) {
        result.max_abs_error = abs_err;
        result.worst_index = i;
      }
      result.max_rel_error = std::max(result.max_rel_error, rel_err);
    }
  }
  return result;
}

}  // namespace vqmc
