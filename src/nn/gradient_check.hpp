#pragma once

/// \file gradient_check.hpp
/// \brief Central-finite-difference validation of analytic model gradients.
///
/// Both MADE and RBM implement hand-written backprop; these helpers are the
/// library's defense against sign/transpose bugs and back every gradient
/// test in the suite.

#include "nn/wavefunction.hpp"

namespace vqmc {

struct GradientCheckResult {
  Real max_abs_error = 0;   ///< max |analytic - numeric|
  Real max_rel_error = 0;   ///< relative to max(1, |numeric|)
  std::size_t worst_index = 0;
};

/// Compare `model.accumulate_log_psi_gradient` on `batch` with coefficients
/// `coeff` against central differences with step `eps`. The model's
/// parameters are perturbed and restored in place.
GradientCheckResult check_log_psi_gradient(WavefunctionModel& model,
                                           const Matrix& batch,
                                           std::span<const Real> coeff,
                                           Real eps = 1e-5);

/// Compare the per-sample gradient matrix against per-sample finite
/// differences (slower; use small models).
GradientCheckResult check_per_sample_gradient(WavefunctionModel& model,
                                              const Matrix& batch,
                                              Real eps = 1e-5);

}  // namespace vqmc
