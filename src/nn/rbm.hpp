#pragma once

/// \file rbm.hpp
/// \brief Restricted Boltzmann machine wavefunction (Carleo & Troyer 2017),
/// in the exact architecture of Section 5.1:
///
///   Input --[bs,n]--> FC_{n,h} --> Lncoshsum --[bs]--> Output1
///   Input --[bs,n]--> FC_{n,1} --> Add Output1 --[bs]--> Output
///
/// i.e. log psi(x) = sum_k log cosh(w_k . x + c_k) + (a . x + a0).
///
/// The RBM is *unnormalized* — the Born distribution pi(x) is proportional
/// to exp(2 log psi(x)) with an intractable normalizer — so sampling must go
/// through MCMC (Section 2.2).  Parameter layout:
///
///   [ W (h x n) | c (h) | a (n) | a0 (1) ]

#include <cstdint>

#include "nn/wavefunction.hpp"

namespace vqmc {

/// RBM log-amplitude wavefunction.
class Rbm final : public WavefunctionModel {
 public:
  /// \param n number of visible spins
  /// \param hidden number of hidden units (the paper uses h = n)
  Rbm(std::size_t n, std::size_t hidden);

  // WavefunctionModel interface.
  [[nodiscard]] std::size_t num_spins() const override { return n_; }
  [[nodiscard]] std::size_t num_parameters() const override {
    return params_.size();
  }
  [[nodiscard]] std::span<Real> parameters() override { return params_.span(); }
  [[nodiscard]] std::span<const Real> parameters() const override {
    return params_.span();
  }
  void initialize(std::uint64_t seed) override;
  void log_psi(const Matrix& batch, std::span<Real> out) const override;
  void accumulate_log_psi_gradient(const Matrix& batch,
                                   std::span<const Real> coeff,
                                   std::span<Real> grad) const override;
  void log_psi_gradient_per_sample(const Matrix& batch,
                                   Matrix& out) const override;
  [[nodiscard]] bool is_normalized() const override { return false; }
  [[nodiscard]] std::string name() const override { return "RBM"; }
  [[nodiscard]] std::unique_ptr<WavefunctionModel> clone() const override {
    return std::make_unique<Rbm>(*this);
  }

  [[nodiscard]] std::size_t hidden_size() const { return h_; }

 private:
  [[nodiscard]] const Real* w() const { return params_.data(); }
  [[nodiscard]] const Real* c() const { return params_.data() + h_ * n_; }
  [[nodiscard]] const Real* a() const {
    return params_.data() + h_ * n_ + h_;
  }
  [[nodiscard]] Real a0() const { return params_[h_ * n_ + h_ + n_]; }

  /// theta = X W^T + c (bs x h): hidden pre-activations.
  void hidden_preactivations(const Matrix& batch, Matrix& theta) const;

  std::size_t n_;
  std::size_t h_;
  Vector params_;
};

}  // namespace vqmc
