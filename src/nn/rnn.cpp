#include "nn/rnn.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "tensor/kernels.hpp"

namespace vqmc {

namespace {
constexpr Real kProbEps = 1e-12;
Real clamped_log(Real p) { return std::log(std::max(p, kProbEps)); }
}  // namespace

RnnWavefunction::RnnWavefunction(std::size_t n, std::size_t hidden)
    : n_(n), h_(hidden), params_(2 * hidden + hidden * hidden + 2 * hidden + 1) {
  VQMC_REQUIRE(n_ >= 2, "RNN: need at least 2 spins");
  VQMC_REQUIRE(h_ >= 1, "RNN: hidden size must be positive");
  initialize(0);
}

void RnnWavefunction::initialize(std::uint64_t seed) {
  rng::Xoshiro256 gen(seed ^ 0x524e4eULL);  // "RNN"
  Real* p = params_.data();
  const Real s_in = Real(0.5);
  const Real s_hh = Real(0.8) / std::sqrt(Real(h_));  // spectral-radius-ish
  for (std::size_t i = 0; i < 2 * h_; ++i) p[i] = rng::uniform(gen, -s_in, s_in);
  p += 2 * h_;
  for (std::size_t i = 0; i < h_ * h_; ++i)
    p[i] = rng::uniform(gen, -s_hh, s_hh);
  p += h_ * h_;
  for (std::size_t i = 0; i < h_; ++i) p[i] = 0;  // b_h
  p += h_;
  const Real s_p = 1 / std::sqrt(Real(h_));
  for (std::size_t i = 0; i < h_; ++i) p[i] = rng::uniform(gen, -s_p, s_p);
  p += h_;
  p[0] = 0;  // b_p
}

void RnnWavefunction::forward(const Matrix& batch, std::vector<Matrix>& hidden,
                              Matrix& p) const {
  VQMC_REQUIRE(batch.cols() == n_, "RNN: batch has wrong spin count");
  const std::size_t bs = batch.rows();
  hidden.assign(n_, Matrix());
  p = Matrix(bs, n_);

  const Real* win = w_in();
  const Real* whh = w_hh();
  const Real* bh = b_h();
  const Real* wp = w_p();
  const Real bp = b_p();

  for (std::size_t t = 0; t < n_; ++t) {
    hidden[t] = Matrix(bs, h_);
    Matrix& ht = hidden[t];
    const Matrix* prev = t > 0 ? &hidden[t - 1] : nullptr;
#pragma omp parallel for schedule(static)
    for (std::size_t k = 0; k < bs; ++k) {
      Real* h_row = ht.row(k).data();
      const Real* prev_row = prev ? prev->row(k).data() : nullptr;
      // One-hot of the previous spin; zero vector at t = 0.
      const bool has_input = t > 0;
      const std::size_t onehot =
          has_input && batch(k, t - 1) > Real(0.5) ? 1u : 0u;
      for (std::size_t l = 0; l < h_; ++l) {
        Real a = bh[l];
        if (has_input) a += win[l * 2 + onehot];
        if (prev_row != nullptr) {
          const Real* whh_row = whh + l * h_;
          for (std::size_t m = 0; m < h_; ++m) a += whh_row[m] * prev_row[m];
        }
        h_row[l] = std::tanh(a);
      }
      Real logit = bp;
      for (std::size_t l = 0; l < h_; ++l) logit += wp[l] * h_row[l];
      p(k, t) = sigmoid(logit);
    }
  }
}

void RnnWavefunction::conditionals(const Matrix& batch, Matrix& out) const {
  std::vector<Matrix> hidden;
  forward(batch, hidden, out);
}

void RnnWavefunction::log_psi(const Matrix& batch, std::span<Real> out) const {
  VQMC_REQUIRE(out.size() == batch.rows(), "RNN: output size mismatch");
  std::vector<Matrix> hidden;
  Matrix p;
  forward(batch, hidden, p);
  const std::size_t bs = batch.rows();
#pragma omp parallel for schedule(static)
  for (std::size_t k = 0; k < bs; ++k) {
    Real log_pi = 0;
    for (std::size_t t = 0; t < n_; ++t) {
      const Real x = batch(k, t);
      log_pi += x * clamped_log(p(k, t)) + (1 - x) * clamped_log(1 - p(k, t));
    }
    out[k] = log_pi / 2;
  }
}

void RnnWavefunction::accumulate_log_psi_gradient(const Matrix& batch,
                                                  std::span<const Real> coeff,
                                                  std::span<Real> grad) const {
  const std::size_t bs = batch.rows();
  VQMC_REQUIRE(coeff.size() == bs, "RNN: coefficient size mismatch");
  VQMC_REQUIRE(grad.size() == num_parameters(), "RNN: gradient size mismatch");

  std::vector<Matrix> hidden;
  Matrix p;
  forward(batch, hidden, p);

  const Real* whh = w_hh();
  const Real* wp = w_p();
  const std::size_t off_whh = 2 * h_;
  const std::size_t off_bh = off_whh + h_ * h_;
  const std::size_t off_wp = off_bh + h_;
  const std::size_t off_bp = off_wp + h_;

  // Backprop through time. dh carries the gradient flowing into h_t.
  Matrix dh(bs, h_);
  Matrix da(bs, h_);
  for (std::size_t t = n_; t-- > 0;) {
    // Output head at step t: g = coeff/2 * (x_t - p_t).
#pragma omp parallel for schedule(static)
    for (std::size_t k = 0; k < bs; ++k) {
      const Real g = coeff[k] / 2 * (batch(k, t) - p(k, t));
      Real* dh_row = dh.row(k).data();
      for (std::size_t l = 0; l < h_; ++l) dh_row[l] += g * wp[l];
    }
    // w_p / b_p gradients (sequential accumulation across the batch).
    for (std::size_t k = 0; k < bs; ++k) {
      const Real g = coeff[k] / 2 * (batch(k, t) - p(k, t));
      const Real* h_row = hidden[t].row(k).data();
      for (std::size_t l = 0; l < h_; ++l) grad[off_wp + l] += g * h_row[l];
      grad[off_bp] += g;
    }

    // Through tanh: da = dh .* (1 - h^2).
#pragma omp parallel for schedule(static)
    for (std::size_t k = 0; k < bs; ++k) {
      const Real* h_row = hidden[t].row(k).data();
      const Real* dh_row = dh.row(k).data();
      Real* da_row = da.row(k).data();
      for (std::size_t l = 0; l < h_; ++l)
        da_row[l] = dh_row[l] * (1 - h_row[l] * h_row[l]);
    }

    // Parameter gradients at step t.
    for (std::size_t k = 0; k < bs; ++k) {
      const Real* da_row = da.row(k).data();
      if (t > 0) {
        const std::size_t onehot = batch(k, t - 1) > Real(0.5) ? 1u : 0u;
        for (std::size_t l = 0; l < h_; ++l)
          grad[l * 2 + onehot] += da_row[l];
        const Real* prev_row = hidden[t - 1].row(k).data();
        for (std::size_t l = 0; l < h_; ++l) {
          Real* g_whh = grad.data() + off_whh + l * h_;
          const Real dal = da_row[l];
          for (std::size_t m = 0; m < h_; ++m) g_whh[m] += dal * prev_row[m];
        }
      }
      for (std::size_t l = 0; l < h_; ++l) grad[off_bh + l] += da_row[l];
    }

    // Propagate to the previous hidden state: dh_{t-1} = W_hh^T da_t.
    if (t > 0) {
      Matrix dh_prev(bs, h_);
#pragma omp parallel for schedule(static)
      for (std::size_t k = 0; k < bs; ++k) {
        const Real* da_row = da.row(k).data();
        Real* out_row = dh_prev.row(k).data();
        for (std::size_t m = 0; m < h_; ++m) {
          Real acc = 0;
          for (std::size_t l = 0; l < h_; ++l) acc += whh[l * h_ + m] * da_row[l];
          out_row[m] = acc;
        }
      }
      dh = std::move(dh_prev);
    }
  }
}

void RnnWavefunction::log_psi_gradient_per_sample(const Matrix& batch,
                                                  Matrix& out) const {
  const std::size_t bs = batch.rows();
  const std::size_t d = num_parameters();
  VQMC_REQUIRE(out.rows() == bs && out.cols() == d,
               "RNN: per-sample gradient shape mismatch");
  Matrix single(1, n_);
  Vector coeff(1);
  coeff[0] = 1;
  for (std::size_t k = 0; k < bs; ++k) {
    auto src = batch.row(k);
    std::copy(src.begin(), src.end(), single.row(0).begin());
    auto dst = out.row(k);
    std::fill(dst.begin(), dst.end(), Real(0));
    accumulate_log_psi_gradient(single, coeff.span(), dst);
  }
}

}  // namespace vqmc
