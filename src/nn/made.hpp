#pragma once

/// \file made.hpp
/// \brief MADE — masked autoencoder for distribution estimation
/// (Germain et al., ICML 2015), instantiated exactly as in the paper:
///
///   Input --[bs,n]--> MaskedFC1 --[bs,h]--> ReLU
///         --[bs,h]--> MaskedFC2 --[bs,n]--> Sigmoid --> conditionals
///
/// Output i is the conditional p(x_i = 1 | x_1..x_{i-1}); binary masks on
/// the two weight matrices remove every computational path from inputs
/// j >= i to output i, so all n conditionals come out of a single forward
/// pass and the joint factorizes as Eq. 7.  The wavefunction is
/// psi(x) = sqrt(pi(x)) with log pi(x) = sum_i [x_i log p_i +
/// (1 - x_i) log(1 - p_i)] — normalized by construction, enabling exact
/// autoregressive sampling (Algorithm 1).
///
/// Parameter vector layout (d = 2hn + h + n, as in Section 4):
///   [ W1 (h x n) | b1 (h) | W2 (n x h) | b2 (n) ]
///
/// Masks use the natural ordering with hidden degrees m_k = 1 + (k mod
/// (n-1)) assigned cyclically: M1[k][j] = 1 iff j + 1 <= m_k and
/// M2[i][k] = 1 iff i + 1 > m_k.  Output 0 has no incoming connections, so
/// p(x_1 = 1) = sigmoid(b2[0]) is a learned scalar, as it must be.
///
/// Masked compute plan (DESIGN.md §5f/§5g): the masks are exact prefix /
/// cyclic-prefix patterns, so every evaluation runs the extent-aware
/// SIMD kernels over a MaskedPlan built once at construction, skipping the
/// ~50% of multiply-adds the masks zero out.  The masked weight matrices
/// `M .* W` — plus their packed row panels (PackedRowPanels, fed to
/// gemm_nt_panels in the forward) and the W1 column-value packing (fed to
/// the samplers' rank-1 update) — are cached behind a parameter version
/// counter (bumped whenever the mutable parameters() span is handed out)
/// instead of being re-materialized per call; results agree with the dense
/// masked path within the accumulation-order contract of kernels.hpp
/// (tolerance-based parity tests pin this against the scalar references).
///
/// Thread safety: every const method (log_psi, conditionals, the gradient
/// evaluations, masked_weights_public) uses only call-local scratch or a
/// caller-owned Workspace — the one piece of shared mutable state, the
/// masked-weights cache, is rebuilt under an internal lock at most once per
/// parameter version — so concurrent read-only use of one Made instance
/// from multiple threads is safe as long as no thread concurrently writes
/// parameters() or calls initialize().  The serve subsystem relies on this
/// (a TSan-covered test hammers one frozen instance from 8 threads).
/// Mutators must re-acquire parameters() before each round of writes; a
/// cached mutable span bypasses the version counter and serves stale
/// masked weights.

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/masked_plan.hpp"
#include "nn/wavefunction.hpp"

namespace vqmc {

/// The paper's default hidden width h = 5 (log n)^2 (natural log), >= 4.
std::size_t made_default_hidden(std::size_t n);

/// MADE autoregressive wavefunction.
class Made final : public AutoregressiveModel {
 public:
  /// \param n number of spins (>= 2)
  /// \param hidden hidden layer width h (>= 1)
  Made(std::size_t n, std::size_t hidden);

  /// Convenience: paper's h = 5 (log n)^2.
  static Made with_default_hidden(std::size_t n) {
    return Made(n, made_default_hidden(n));
  }

  /// Immutable packed masked weights `M .* W` for one parameter version,
  /// shared between the cache and any evaluation still holding them.
  /// Entries outside the mask extents are exactly zero.  The panel forms
  /// repack exactly the in-extent values: `w1p`/`w2p` are the row panels
  /// the forward's gemm_nt_panels streams over, and `w1_col_values` packs
  /// W1 column-by-column (geometry: MaskedPlan::w1_cols) for the ancestral
  /// samplers' rank-1 hidden-state update.  Packing amortizes to zero: it
  /// happens at most once per parameter write, never per call.
  struct MaskedWeights {
    Matrix w1m;           ///< h x n
    Matrix w2m;           ///< n x h
    PackedRowPanels w1p;  ///< W1 in-extent values, row-packed
    PackedRowPanels w2p;  ///< W2 in-extent values, row-packed
    AlignedBuffer<Real> w1_col_values;  ///< W1 in-extent values, column-packed
    std::uint64_t version = 0;
  };

  /// Caller-owned evaluation scratch (see WavefunctionModel::Workspace):
  /// the forward activations plus the gradient temporaries.  Matrices are
  /// reshaped lazily, so one Workspace serves any batch size without
  /// reallocating once shapes stabilize.
  struct Workspace final : WavefunctionModel::Workspace {
    Matrix a1;   ///< bs x h, pre-ReLU
    Matrix h1;   ///< bs x h, post-ReLU
    Matrix p;    ///< bs x n, conditionals
    Matrix g2;   ///< bs x n, output-layer signal
    Matrix g1;   ///< bs x h, hidden-layer signal
    Matrix dw1;  ///< h x n, W1 gradient scratch
    Matrix dw2;  ///< n x h, W2 gradient scratch
    // Batched conditional-engine scratch (sample_conditionals_batched).
    // The running pre-activation block and its rectified tail copy use a
    // pad-to-8 column stride so every row starts cache-line-aligned — the
    // dot kernels otherwise split most vector loads at h = 239-ish strides.
    Vector logits;   ///< bs, per-site batched logits
    Matrix a1_pad;   ///< bs x pad8(h), running pre-activations
    Matrix h1_pad;   ///< bs x pad8(h), aligned-stride relu(a1) for the tail
    Matrix tail_logits;                ///< (n - frozen) x bs, frozen-tail pass
    std::vector<std::uint32_t> flips;  ///< rows that drew 1 at this site
    std::vector<std::uint64_t> flip_masks;  ///< per row, flips of a 64-site block
    std::vector<const Real*> col_ptrs;      ///< per block site, far column segment
  };

  [[nodiscard]] std::unique_ptr<WavefunctionModel::Workspace> make_workspace()
      const override {
    return std::make_unique<Workspace>();
  }

  // WavefunctionModel interface.
  [[nodiscard]] std::size_t num_spins() const override { return n_; }
  [[nodiscard]] std::size_t num_parameters() const override {
    return params_.size();
  }
  [[nodiscard]] std::span<Real> parameters() override {
    version_.bump();  // handing out the mutable span is the write path
    return params_.span();
  }
  [[nodiscard]] std::span<const Real> parameters() const override {
    return params_.span();
  }
  void initialize(std::uint64_t seed) override;
  void log_psi(const Matrix& batch, std::span<Real> out) const override;
  void accumulate_log_psi_gradient(const Matrix& batch,
                                   std::span<const Real> coeff,
                                   std::span<Real> grad) const override;
  void log_psi_gradient_per_sample(const Matrix& batch,
                                   Matrix& out) const override;
  [[nodiscard]] std::string name() const override { return "MADE"; }
  [[nodiscard]] std::unique_ptr<WavefunctionModel> clone() const override {
    return std::make_unique<Made>(*this);
  }

  // Workspace-aware variants (identical results, reused scratch).
  void log_psi_ws(const Matrix& batch, std::span<Real> out,
                  WavefunctionModel::Workspace* ws) const override;
  void accumulate_log_psi_gradient_ws(const Matrix& batch,
                                      std::span<const Real> coeff,
                                      std::span<Real> grad,
                                      WavefunctionModel::Workspace* ws)
      const override;
  void log_psi_gradient_per_sample_ws(const Matrix& batch, Matrix& out,
                                      WavefunctionModel::Workspace* ws)
      const override;

  // Concrete-type overloads for callers that own a Made::Workspace.
  void log_psi(const Matrix& batch, std::span<Real> out, Workspace& ws) const;
  void accumulate_log_psi_gradient(const Matrix& batch,
                                   std::span<const Real> coeff,
                                   std::span<Real> grad, Workspace& ws) const;
  void log_psi_gradient_per_sample(const Matrix& batch, Matrix& out,
                                   Workspace& ws) const;
  void conditionals(const Matrix& batch, Matrix& out, Workspace& ws) const;

  // AutoregressiveModel interface.
  void conditionals(const Matrix& batch, Matrix& out) const override;

  [[nodiscard]] std::size_t hidden_size() const { return h_; }

  /// The binary masks (for tests of the autoregressive property).
  [[nodiscard]] const Matrix& mask1() const { return mask1_; }
  [[nodiscard]] const Matrix& mask2() const { return mask2_; }

  // -- Masked compute plan (used by FastMadeSampler, serve, tests) -----------

  /// Per-row extents of mask1 (prefix [0, m_k) per hidden row).
  [[nodiscard]] const RowExtents& w1_extents() const { return plan_.w1; }
  /// Per-row extents of mask2 (cyclic prefix intervals per output row).
  [[nodiscard]] const RowExtents& w2_extents() const { return plan_.w2; }
  /// Per-column active-row panels of mask1 (the rank-1 update geometry;
  /// values for the current parameters: MaskedWeights::w1_col_values).
  [[nodiscard]] const ColPanelGeometry& w1_col_panels() const {
    return plan_.w1_cols;
  }

  /// Packed masked weights for the current parameters, served from the
  /// version-counter-invalidated cache (rebuilt at most once per parameter
  /// write, never per call).  Safe to call concurrently with other const
  /// methods; the returned snapshot stays valid even if the parameters
  /// change afterwards.
  [[nodiscard]] std::shared_ptr<const MaskedWeights> masked() const;

  /// Current parameter version (monotone; bumps on every mutable
  /// parameters() acquisition and on initialize()).
  [[nodiscard]] std::uint64_t parameter_version() const {
    return version_.value();
  }

  // -- Incremental-evaluation API (used by FastMadeSampler) ------------------
  // Ancestral sampling only ever *appends* one spin at a time, so the
  // hidden pre-activations can be updated in O(h) per flipped input instead
  // of recomputed in O(h n). These accessors expose the pieces the fast
  // sampler needs; they are part of the public API because writing custom
  // high-throughput samplers is a legitimate downstream use.

  /// Masked weights (M .* W) copied out of the cache (compatibility
  /// surface; hot paths should hold the shared masked() snapshot instead).
  void masked_weights_public(Matrix& w1m, Matrix& w2m) const {
    const std::shared_ptr<const MaskedWeights> mw = masked();
    w1m = mw->w1m;
    w2m = mw->w2m;
  }
  [[nodiscard]] std::span<const Real> bias1() const {
    return {b1(), h_};
  }
  [[nodiscard]] std::span<const Real> bias2() const {
    return {b2(), n_};
  }

 private:
  // Views into the flat parameter vector.
  [[nodiscard]] const Real* w1() const { return params_.data(); }
  [[nodiscard]] const Real* b1() const { return params_.data() + h_ * n_; }
  [[nodiscard]] const Real* w2() const {
    return params_.data() + h_ * n_ + h_;
  }
  [[nodiscard]] const Real* b2() const {
    return params_.data() + h_ * n_ + h_ + n_ * h_;
  }

  /// Forward pass via the packed plan; fills ws.a1 / ws.h1 and writes the
  /// conditionals into `p` (reshaped as needed; may alias ws.p or a
  /// caller-visible output).
  void forward(const Matrix& batch, const MaskedWeights& mw, Workspace& ws,
               Matrix& p) const;

  std::size_t n_;
  std::size_t h_;
  Vector params_;
  Matrix mask1_;  ///< h x n
  Matrix mask2_;  ///< n x h
  MaskedPlan plan_;
  ParamVersion version_;
  VersionedCache<MaskedWeights> cache_;
};

}  // namespace vqmc
