#pragma once

/// \file masked_plan.hpp
/// \brief Mask-aware compute plan for the MADE family (DESIGN.md §5f).
///
/// The autoregressive masks are fixed at construction, so everything
/// derivable from them is computed exactly once:
///
///  * **MaskedPlan** — per-row `[begin, end)` column extents of each masked
///    weight matrix (RowExtents).  The extent-aware kernels in
///    tensor/kernels.hpp use them to skip the ~50% of multiply-adds the
///    masks zero out, and the gradient paths use them to accumulate weight
///    gradients without a separate mask-apply pass.  Since PR 6 the plan
///    also records the W1 **column-panel geometry** (ColPanelGeometry): the
///    ancestral samplers' rank-1 update walks the active rows of one W1
///    column per accepted spin, and the packed row lists turn that walk
///    into a contiguous stream instead of a strided masked column scan.
///  * **ParamVersion / VersionedCache** — the masked weight matrices
///    `M .* W` depend on the parameters, which do change during training.
///    Every model in the family bumps a version counter whenever its
///    mutable `parameters()` span is handed out (the only write path), and
///    the packed masked weights are cached behind that counter: rebuilt at
///    most once per parameter write, shared by every forward / gradient /
///    serve call in between.  Before this cache the dense masked copies
///    were re-materialized and re-allocated on *every* call (~1.9 ms per
///    request at n = 1000 on the serve path).
///
/// Concurrency contract: concurrent const readers (the serve snapshot is
/// hammered from many threads) may race only on the cache itself, which is
/// guarded by a mutex inside VersionedCache; a reader never observes a
/// half-built entry.  Writing parameters concurrently with reads remains
/// forbidden, exactly as documented in made.hpp.
///
/// Mutable-span caveat: the version counter can only see writes that go
/// through `parameters()`.  Callers must re-acquire the span before each
/// round of writes instead of caching it across evaluations
/// (nn/gradient_check.cpp is the canonical in-tree example).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "tensor/kernels.hpp"

namespace vqmc {

/// Copyable atomic parameter-version counter.  Copying a model snapshots
/// the current version; the copy starts with an empty cache lineage of its
/// own (see VersionedCache).
class ParamVersion {
 public:
  ParamVersion() = default;
  ParamVersion(const ParamVersion& other) : v_(other.value()) {}
  ParamVersion& operator=(const ParamVersion& other) {
    v_.store(other.value(), std::memory_order_release);
    return *this;
  }

  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_acquire);
  }
  void bump() { v_.fetch_add(1, std::memory_order_acq_rel); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Version-keyed cache of an immutable derived object (the packed masked
/// weights).  `fetch` returns the cached entry when its version matches and
/// otherwise rebuilds under the lock, so concurrent readers after an
/// invalidation do the rebuild exactly once.  T must expose a `version`
/// member.
template <typename T>
class VersionedCache {
 public:
  VersionedCache() = default;
  VersionedCache(const VersionedCache& other) : ptr_(other.snapshot()) {}
  VersionedCache& operator=(const VersionedCache& other) {
    if (this != &other) {
      auto p = other.snapshot();
      const std::lock_guard<std::mutex> lock(mutex_);
      ptr_ = std::move(p);
    }
    return *this;
  }

  /// Cached entry for `version`, rebuilding via `build()` (which must
  /// return a shared_ptr whose `version` field equals `version`) if stale.
  template <typename BuildFn>
  [[nodiscard]] std::shared_ptr<const T> fetch(std::uint64_t version,
                                               BuildFn&& build) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (ptr_ == nullptr || ptr_->version != version)
      ptr_ = std::forward<BuildFn>(build)();
    return ptr_;
  }

  [[nodiscard]] std::shared_ptr<const T> snapshot() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return ptr_;
  }

 private:
  mutable std::mutex mutex_;
  mutable std::shared_ptr<const T> ptr_;
};

/// Column-panel geometry of a row-extent mask: for each column j, the
/// packed ascending list of rows whose extents contain j.  This is the
/// transpose view the ancestral samplers need — accepting spin i adds
/// column i of W1m to the hidden pre-activations, touching exactly the
/// rows listed for that column.  Pairing the geometry with per-version
/// packed column values (built alongside the masked weights) makes the
/// rank-1 update a unit-stride gather-add.  Each row appears at most once
/// per column, so the update order is unique and the result is bitwise
/// identical to the strided masked column walk it replaces.
struct ColPanelGeometry {
  std::vector<std::size_t> offsets;  ///< size cols()+1, into `rows`
  std::vector<std::uint32_t> rows;   ///< active row ids, packed per column

  [[nodiscard]] std::size_t cols() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  /// Active rows of column j (ascending).
  [[nodiscard]] std::span<const std::uint32_t> col(std::size_t j) const {
    return {rows.data() + offsets[j], offsets[j + 1] - offsets[j]};
  }

  /// Invert a row-extent list into per-column row panels.
  void build(RowExtentsView ext, std::size_t ncols) {
    offsets.assign(ncols + 1, 0);
    for (std::size_t r = 0; r < ext.rows(); ++r)
      for (const ColSpan s : ext.row(r))
        for (std::size_t j = s.begin; j < s.end; ++j) ++offsets[j + 1];
    for (std::size_t j = 0; j < ncols; ++j) offsets[j + 1] += offsets[j];
    rows.resize(offsets[ncols]);
    std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
    for (std::size_t r = 0; r < ext.rows(); ++r)
      for (const ColSpan s : ext.row(r))
        for (std::size_t j = s.begin; j < s.end; ++j)
          rows[cursor[j]++] = std::uint32_t(r);
  }
};

/// The per-model mask geometry: extents of the first-layer (prefix) and
/// output-layer (cyclic-prefix) masks, plus the W1 column panels for the
/// samplers' rank-1 updates.  Computed once at construction; the
/// per-parameter-version value packings (PackedRowPanels, column values)
/// live in the models' MaskedWeights so they rebuild with the weights.
struct MaskedPlan {
  RowExtents w1;            ///< per W1 row: [0, m_k) prefix
  RowExtents w2;            ///< per W2 row: cyclic prefix interval list
  ColPanelGeometry w1_cols; ///< per W1 column: active hidden rows

  void build(const Matrix& mask1, const Matrix& mask2) {
    w1 = RowExtents::from_mask(mask1);
    w2 = RowExtents::from_mask(mask2);
    w1_cols.build(w1.view(), mask1.cols());
  }
};

}  // namespace vqmc
