#pragma once

/// \file masked_plan.hpp
/// \brief Mask-aware compute plan for the MADE family (DESIGN.md §5f).
///
/// The autoregressive masks are fixed at construction, so everything
/// derivable from them is computed exactly once:
///
///  * **MaskedPlan** — per-row `[begin, end)` column extents of each masked
///    weight matrix (RowExtents).  The extent-aware kernels in
///    tensor/kernels.hpp use them to skip the ~50% of multiply-adds the
///    masks zero out, and the gradient paths use them to accumulate weight
///    gradients without a separate mask-apply pass.
///  * **ParamVersion / VersionedCache** — the masked weight matrices
///    `M .* W` depend on the parameters, which do change during training.
///    Every model in the family bumps a version counter whenever its
///    mutable `parameters()` span is handed out (the only write path), and
///    the packed masked weights are cached behind that counter: rebuilt at
///    most once per parameter write, shared by every forward / gradient /
///    serve call in between.  Before this cache the dense masked copies
///    were re-materialized and re-allocated on *every* call (~1.9 ms per
///    request at n = 1000 on the serve path).
///
/// Concurrency contract: concurrent const readers (the serve snapshot is
/// hammered from many threads) may race only on the cache itself, which is
/// guarded by a mutex inside VersionedCache; a reader never observes a
/// half-built entry.  Writing parameters concurrently with reads remains
/// forbidden, exactly as documented in made.hpp.
///
/// Mutable-span caveat: the version counter can only see writes that go
/// through `parameters()`.  Callers must re-acquire the span before each
/// round of writes instead of caching it across evaluations
/// (nn/gradient_check.cpp is the canonical in-tree example).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>

#include "tensor/kernels.hpp"

namespace vqmc {

/// Copyable atomic parameter-version counter.  Copying a model snapshots
/// the current version; the copy starts with an empty cache lineage of its
/// own (see VersionedCache).
class ParamVersion {
 public:
  ParamVersion() = default;
  ParamVersion(const ParamVersion& other) : v_(other.value()) {}
  ParamVersion& operator=(const ParamVersion& other) {
    v_.store(other.value(), std::memory_order_release);
    return *this;
  }

  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_acquire);
  }
  void bump() { v_.fetch_add(1, std::memory_order_acq_rel); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Version-keyed cache of an immutable derived object (the packed masked
/// weights).  `fetch` returns the cached entry when its version matches and
/// otherwise rebuilds under the lock, so concurrent readers after an
/// invalidation do the rebuild exactly once.  T must expose a `version`
/// member.
template <typename T>
class VersionedCache {
 public:
  VersionedCache() = default;
  VersionedCache(const VersionedCache& other) : ptr_(other.snapshot()) {}
  VersionedCache& operator=(const VersionedCache& other) {
    if (this != &other) {
      auto p = other.snapshot();
      const std::lock_guard<std::mutex> lock(mutex_);
      ptr_ = std::move(p);
    }
    return *this;
  }

  /// Cached entry for `version`, rebuilding via `build()` (which must
  /// return a shared_ptr whose `version` field equals `version`) if stale.
  template <typename BuildFn>
  [[nodiscard]] std::shared_ptr<const T> fetch(std::uint64_t version,
                                               BuildFn&& build) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (ptr_ == nullptr || ptr_->version != version)
      ptr_ = std::forward<BuildFn>(build)();
    return ptr_;
  }

  [[nodiscard]] std::shared_ptr<const T> snapshot() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return ptr_;
  }

 private:
  mutable std::mutex mutex_;
  mutable std::shared_ptr<const T> ptr_;
};

/// The per-model mask geometry: extents of the first-layer (prefix) and
/// output-layer (cyclic-prefix) masks.  Computed once at construction.
struct MaskedPlan {
  RowExtents w1;  ///< per W1 row: [0, m_k) prefix
  RowExtents w2;  ///< per W2 row: cyclic prefix interval list

  void build(const Matrix& mask1, const Matrix& mask2) {
    w1 = RowExtents::from_mask(mask1);
    w2 = RowExtents::from_mask(mask2);
  }
};

}  // namespace vqmc
