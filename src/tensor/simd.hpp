#pragma once

/// \file simd.hpp
/// \brief Runtime SIMD dispatch for the tensor kernels (DESIGN.md §5g).
///
/// The hot gemm/gemv kernels are compiled three times — a generic C++
/// build, an AVX2+FMA build, and an AVX-512 build — and the public entry
/// points in kernels.hpp pick one implementation at runtime from the CPU's
/// capabilities.  The per-ISA translation units are gated at configure
/// time (CMake option `VQMC_SIMD`, x86-64 only, compiler support checked),
/// so a generic build contains exactly one implementation and no intrinsic
/// ever reaches a machine that cannot execute it.
///
/// Determinism contract: the selected level is fixed for the lifetime of
/// the process (first use latches it), every implementation uses a fixed
/// blocking and lane-combination order, and none of them consults thread
/// count or data values — so results are bitwise reproducible run-to-run
/// on the same build and machine.  Different levels (and therefore
/// different machines) may differ by the documented ULP bound; see the
/// "accumulation-order contract" note in kernels.hpp.
///
/// `VQMC_SIMD_LEVEL=generic|avx2|avx512` in the environment caps the
/// detected level (it can only lower it), and `force_simd_level()` does
/// the same in-process — the parity tests use it to run the fallback
/// implementations on hardware that would normally dispatch higher.

#include <cstdint>

namespace vqmc::simd {

/// Instruction-set tiers, ordered: a CPU at level L can run every level
/// <= L.
enum class Level : std::uint8_t {
  kGeneric = 0,  ///< portable C++ (independent scalar accumulator chains)
  kAvx2 = 1,     ///< AVX2 + FMA, 4 doubles per vector
  kAvx512 = 2,   ///< AVX-512 F/DQ/VL, 8 doubles per vector
};

/// The dispatch level in effect: min(detected CPU level, compiled-in
/// level, environment cap, forced cap).  Latched on first call.
Level active_level();

/// Highest level the running CPU supports among those compiled in.
Level detected_level();

/// Cap the active level in-process (testing hook; pass a level above the
/// detected one to restore full dispatch).  Takes effect immediately —
/// callers must not race kernel invocations against it.
void force_level(Level level);

/// Human-readable level name ("generic" / "avx2" / "avx512").
const char* level_name(Level level);

}  // namespace vqmc::simd
