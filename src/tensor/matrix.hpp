#pragma once

/// \file matrix.hpp
/// \brief Dense row-major real matrix (value type).
///
/// Rows are the batch dimension throughout the library: a batch of `bs`
/// n-spin configurations is a `bs x n` Matrix, weight matrices are
/// `out x in`, and `row(i)` gives a contiguous span.

#include <span>

#include "common/error.hpp"
#include "tensor/buffer.hpp"
#include "tensor/real.hpp"

namespace vqmc {

/// Dense, aligned, row-major matrix of Real. Elements are zero-initialized.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), storage_(rows * cols) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return rows_ * cols_; }

  Real& operator()(std::size_t r, std::size_t c) {
    VQMC_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return storage_[r * cols_ + c];
  }
  Real operator()(std::size_t r, std::size_t c) const {
    VQMC_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return storage_[r * cols_ + c];
  }

  [[nodiscard]] Real* data() { return storage_.data(); }
  [[nodiscard]] const Real* data() const { return storage_.data(); }

  /// Contiguous view of row r.
  [[nodiscard]] std::span<Real> row(std::size_t r) {
    VQMC_ASSERT(r < rows_, "row index out of range");
    return {storage_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const Real> row(std::size_t r) const {
    VQMC_ASSERT(r < rows_, "row index out of range");
    return {storage_.data() + r * cols_, cols_};
  }

  void fill(Real value) {
    for (std::size_t i = 0; i < size(); ++i) storage_[i] = value;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  AlignedBuffer<Real> storage_;
};

/// Give `m` the requested shape, reallocating only when it differs.
/// Contents are unspecified afterwards (a fresh allocation is zero, a
/// reused one keeps stale values) — callers must fully overwrite.  This is
/// the workspace-reuse primitive: scratch matrices held across trainer
/// iterations or serve requests stop allocating once shapes stabilize.
inline void ensure_shape(Matrix& m, std::size_t rows, std::size_t cols) {
  if (m.rows() != rows || m.cols() != cols) m = Matrix(rows, cols);
}

}  // namespace vqmc
