// Baseline-ISA instantiation of the blocked kernels (no extra compile
// flags); always built, and the only implementation when VQMC_SIMD=OFF.
#define VQMC_ARCH_NS arch_generic
#include "tensor/kernels_arch.inc"
