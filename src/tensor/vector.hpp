#pragma once

/// \file vector.hpp
/// \brief Dense real vector (value type) used for parameters, gradients and
/// per-sample quantities.

#include <cmath>
#include <initializer_list>
#include <span>

#include "common/error.hpp"
#include "tensor/buffer.hpp"
#include "tensor/real.hpp"

namespace vqmc {

/// Dense, aligned, fixed-size vector of Real. Elements are zero-initialized.
class Vector {
 public:
  Vector() = default;
  explicit Vector(std::size_t size) : storage_(size) {}
  Vector(std::initializer_list<Real> values) : storage_(values.size()) {
    std::size_t i = 0;
    for (Real v : values) storage_[i++] = v;
  }

  [[nodiscard]] std::size_t size() const { return storage_.size(); }
  [[nodiscard]] bool empty() const { return size() == 0; }

  Real& operator[](std::size_t i) {
    VQMC_ASSERT(i < size(), "vector index out of range");
    return storage_[i];
  }
  Real operator[](std::size_t i) const {
    VQMC_ASSERT(i < size(), "vector index out of range");
    return storage_[i];
  }

  [[nodiscard]] Real* data() { return storage_.data(); }
  [[nodiscard]] const Real* data() const { return storage_.data(); }

  [[nodiscard]] std::span<Real> span() { return {data(), size()}; }
  [[nodiscard]] std::span<const Real> span() const { return {data(), size()}; }

  [[nodiscard]] Real* begin() { return data(); }
  [[nodiscard]] Real* end() { return data() + size(); }
  [[nodiscard]] const Real* begin() const { return data(); }
  [[nodiscard]] const Real* end() const { return data() + size(); }

  /// Set every element to `value`.
  void fill(Real value) {
    for (std::size_t i = 0; i < size(); ++i) storage_[i] = value;
  }

  /// Euclidean norm.
  [[nodiscard]] Real norm() const {
    Real acc = 0;
    for (std::size_t i = 0; i < size(); ++i) acc += storage_[i] * storage_[i];
    return std::sqrt(acc);
  }

 private:
  AlignedBuffer<Real> storage_;
};

}  // namespace vqmc
