#include "tensor/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace vqmc::simd {

namespace {

Level compiled_cap() {
#if VQMC_SIMD_AVX512
  return Level::kAvx512;
#elif VQMC_SIMD_AVX2
  return Level::kAvx2;
#else
  return Level::kGeneric;
#endif
}

Level cpu_level() {
#if defined(__x86_64__) || defined(_M_X64)
#if VQMC_SIMD_AVX2 || VQMC_SIMD_AVX512
  __builtin_cpu_init();
#if VQMC_SIMD_AVX512
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq") && __builtin_cpu_supports("avx512vl"))
    return Level::kAvx512;
#endif
#if VQMC_SIMD_AVX2
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
    return Level::kAvx2;
#endif
#endif
#endif
  return Level::kGeneric;
}

Level env_cap() {
  const char* env = std::getenv("VQMC_SIMD_LEVEL");
  if (env == nullptr) return compiled_cap();
  if (std::strcmp(env, "generic") == 0) return Level::kGeneric;
  if (std::strcmp(env, "avx2") == 0) return Level::kAvx2;
  if (std::strcmp(env, "avx512") == 0) return Level::kAvx512;
  return compiled_cap();  // unknown value: ignore rather than fail
}

Level min_level(Level a, Level b) { return a < b ? a : b; }

Level detect_once() {
  return min_level(min_level(cpu_level(), compiled_cap()), env_cap());
}

std::atomic<Level>& forced_cap() {
  static std::atomic<Level> cap{Level::kAvx512};  // i.e. "no cap"
  return cap;
}

}  // namespace

Level detected_level() {
  static const Level level = detect_once();
  return level;
}

Level active_level() {
  return min_level(detected_level(), forced_cap().load(std::memory_order_relaxed));
}

void force_level(Level level) {
  forced_cap().store(level, std::memory_order_relaxed);
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kAvx2:
      return "avx2";
    case Level::kAvx512:
      return "avx512";
    default:
      return "generic";
  }
}

}  // namespace vqmc::simd
