#pragma once

/// \file kernels.hpp
/// \brief BLAS-like dense and extent-aware structured kernels on
/// Matrix / Vector.
///
/// Naming follows BLAS transpose conventions: `gemm_nt` computes
/// C = A * B^T, `gemm_tn` computes C = A^T * B, etc.  All kernels are
/// OpenMP-parallel over the independent output dimension (`gemv_t`
/// parallelizes its reduction with per-thread partial accumulators); they
/// form the compute substrate that stands in for the paper's GPU matmuls
/// (the MADE / RBM forward and backward passes are nothing but these
/// calls).
///
/// Kernels either overwrite (`gemm*`, `gemv*`) or accumulate
/// (`*_accumulate`); the accumulate forms are used to sum gradients over a
/// batch without temporaries.
///
/// The `*_extents` forms are the masked-compute fast path (DESIGN.md §5f):
/// they take per-row lists of `[begin, end)` column intervals (RowExtents,
/// typically built once from a binary mask) and visit only the columns
/// inside the intervals, skipping the ~50% of multiply-adds the MADE
/// autoregressive masks zero out.
///
/// Accumulation-order contract (DESIGN.md §5g).  Since PR 6 the kernels
/// are SIMD-blocked (runtime-dispatched generic / AVX2 / AVX-512
/// implementations, see simd.hpp), which re-associates dot-type
/// reductions; the PR 5 "bit-for-bit equal to dense-on-masked" promise is
/// replaced by:
///
///  1. *Reference parity within a ULP bound.*  Scalar reference kernels
///     live in kernels_ref.hpp (namespace vqmc::ref); for any dot-form
///     kernel, each output element e with reduction terms t_i satisfies
///     |e_simd - e_ref| <= 2 * L * eps * sum_i |t_i| for reduction length
///     L and eps = DBL_EPSILON (in practice a handful of ulps — the bound
///     is the worst case over any re-association).  Accumulating
///     (axpy-form) kernels preserve the reference term order exactly.
///  2. *Run-to-run bitwise determinism.*  Blocking, lane order, and the
///     combination tree are fixed per build + dispatch level, and no
///     kernel's element values depend on thread count, so repeated runs on
///     one machine reproduce results bit-for-bit.
///  3. *Batch-position independence.*  A row's output is computed with the
///     same canonical per-row accumulation pattern whether it sits in a
///     row block, a block tail, or alone — coalescing rows into a batch
///     (the serving path) can never perturb any row's value.
///
/// Vectorized transcendentals (sigmoid_inplace, bernoulli_log_likelihood)
/// use polynomial exp/log accurate to a few ulp; they vectorize per row so
/// property 3 holds for them too.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "tensor/matrix.hpp"
#include "tensor/vector.hpp"

namespace vqmc {

// ---------------------------------------------------------------------------
// Structured sparsity descriptors (per-row column extents).
// ---------------------------------------------------------------------------

/// One half-open column interval [begin, end).
struct ColSpan {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Non-owning view: row r's nonzero columns are the (sorted, disjoint)
/// intervals `spans[row_ptr[r] .. row_ptr[r+1])`.
struct RowExtentsView {
  std::span<const std::size_t> row_ptr;  ///< size rows()+1
  std::span<const ColSpan> spans;

  [[nodiscard]] std::size_t rows() const {
    return row_ptr.empty() ? 0 : row_ptr.size() - 1;
  }
  [[nodiscard]] std::span<const ColSpan> row(std::size_t r) const {
    return spans.subspan(row_ptr[r], row_ptr[r + 1] - row_ptr[r]);
  }
};

/// Owning per-row interval list (interval-CSR).  Built once from a binary
/// mask; the MADE prefix masks yield one interval per row and the suffix
/// masks a short cyclic list, but any 0/1 pattern is representable (each
/// maximal run of nonzeros becomes one interval).
class RowExtents {
 public:
  RowExtents() = default;

  /// Scan `mask` (any shape) and record the maximal runs of nonzero
  /// entries of each row as intervals.
  [[nodiscard]] static RowExtents from_mask(const Matrix& mask);

  [[nodiscard]] RowExtentsView view() const { return {row_ptr_, spans_}; }
  [[nodiscard]] std::size_t rows() const { return row_ptr_.size() - 1; }
  /// Total number of covered (nonzero) positions.
  [[nodiscard]] std::size_t nonzeros() const { return nonzeros_; }
  /// One past the last nonzero column of row r (0 when the row is empty).
  /// For a prefix mask this is exactly the row's degree bound m_r.
  [[nodiscard]] std::size_t row_end(std::size_t r) const {
    const std::size_t hi = row_ptr_[r + 1];
    return hi == row_ptr_[r] ? 0 : spans_[hi - 1].end;
  }

 private:
  std::vector<std::size_t> row_ptr_{0};
  std::vector<ColSpan> spans_;
  std::size_t nonzeros_ = 0;
};

/// CSR-like packing of the in-extent entries of a row-extent matrix: row
/// r's in-extent values, concatenated span by span, stored contiguously at
/// values[offset[r] .. offset[r+1]).  Packing the masked weights once per
/// parameter version turns the gemm_nt inner loops into unit-stride
/// streams over exactly the touched entries (no dead columns fetched, no
/// span-relative addressing on the B side).  64-byte aligned storage.
class PackedRowPanels {
 public:
  PackedRowPanels() = default;

  /// Build geometry and values from `b` and its extents
  /// (ext.rows() == b.rows()).
  [[nodiscard]] static PackedRowPanels pack(const Matrix& b,
                                            RowExtentsView ext);

  /// Overwrite the values from `b`, reusing the existing geometry; `b` and
  /// `ext` must match the shapes given to pack().
  void refill(const Matrix& b, RowExtentsView ext);

  [[nodiscard]] const Real* row(std::size_t r) const {
    return values_.data() + offsets_[r];
  }
  [[nodiscard]] std::size_t rows() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  [[nodiscard]] std::size_t nonzeros() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return offsets_.empty(); }

 private:
  std::vector<std::size_t> offsets_;  ///< size rows()+1
  AlignedBuffer<Real> values_;
};

// ---------------------------------------------------------------------------
// Level-1: vector-vector.
// ---------------------------------------------------------------------------

/// Dot product <x, y>.
Real dot(std::span<const Real> x, std::span<const Real> y);

/// y += alpha * x.
void axpy(Real alpha, std::span<const Real> x, std::span<Real> y);

/// x *= alpha.
void scale(std::span<Real> x, Real alpha);

/// Sum of elements (pairwise accumulation: O(log N)-ulp error bound, so
/// million-row batch statistics stay accurate).
Real sum(std::span<const Real> x);

/// Arithmetic mean (0 for empty spans; pairwise accumulation).
Real mean(std::span<const Real> x);

/// Population variance (division by N; 0 for empty spans; two-pass with
/// pairwise accumulation of the squared deviations).
Real variance(std::span<const Real> x);

// ---------------------------------------------------------------------------
// Level-2: matrix-vector.
// ---------------------------------------------------------------------------

/// y = A x (A: m x k, x: k, y: m).
void gemv(const Matrix& a, std::span<const Real> x, std::span<Real> y);

/// y = A^T x (A: m x k, x: m, y: k).
void gemv_t(const Matrix& a, std::span<const Real> x, std::span<Real> y);

// ---------------------------------------------------------------------------
// Level-3: matrix-matrix.
// ---------------------------------------------------------------------------

/// C = A B      (A: m x k, B: k x n, C: m x n).
void gemm_nn(const Matrix& a, const Matrix& b, Matrix& c);

/// C = A B^T    (A: m x k, B: n x k, C: m x n).
void gemm_nt(const Matrix& a, const Matrix& b, Matrix& c);

/// C += A^T B   (A: k x m, B: k x n, C: m x n). Accumulating form used for
/// weight gradients summed over the batch (k = batch) dimension.
void gemm_tn_accumulate(const Matrix& a, const Matrix& b, Matrix& c);

// ---------------------------------------------------------------------------
// Extent-aware (masked) forms.  Each takes a RowExtentsView describing the
// structurally nonzero columns and agrees with its dense counterpart run on
// the masked operand within the accumulation-order contract above (the
// scalar references in kernels_ref.hpp are the exact ground truth).
// ---------------------------------------------------------------------------

/// y[r] = sum over r's extents of A(r, c) * x[c]  (A: m x k, extents over
/// A's rows). Rows with no extents produce 0.
void gemv_extents(const Matrix& a, RowExtentsView ext, std::span<const Real> x,
                  std::span<Real> y);

/// C = A B^T with per-B-row extents: C(r, j) reduces only over B row j's
/// intervals (A: m x k, B: n x k, C: m x n, ext.rows() == n).
void gemm_nt_extents(const Matrix& a, const Matrix& b, RowExtentsView ext,
                     Matrix& c);

/// C = A B with per-B-row extents: B row l contributes only its interval
/// columns (A: m x k, B: k x n, C: m x n, ext.rows() == k).
void gemm_nn_extents(const Matrix& a, const Matrix& b, RowExtentsView ext,
                     Matrix& c);

/// C += A^T B restricted to each C row's extents (A: k x m, B: k x n,
/// C: m x n, ext.rows() == m).  Entries of C outside the extents are left
/// untouched — pair with extents_zero / extents_add_flat.
void gemm_tn_accumulate_extents(const Matrix& a, const Matrix& b,
                                RowExtentsView ext, Matrix& c);

/// a(r, j) = 0 for every j inside row r's extents.
void extents_zero(Matrix& a, RowExtentsView ext);

/// dst[r * src.cols() + j] += src(r, j) for every j inside row r's extents
/// (dst is a flat row-major block of the same shape as src).  This replaces
/// the dense "grad += mask .* dw" mask-apply pass: inside the extents the
/// mask is identically 1.
void extents_add_flat(const Matrix& src, RowExtentsView ext,
                      std::span<Real> dst);

// ---------------------------------------------------------------------------
// Packed-panel forms: the B operand pre-packed per parameter version.
// ---------------------------------------------------------------------------

/// C = A B^T with B's in-extent entries given as packed panels; bitwise
/// identical to gemm_nt_extents on the unpacked matrix (identical values
/// stream through the identical canonical dots).  `ext` must be the extents
/// the panels were packed with.
void gemm_nt_panels(const Matrix& a, RowExtentsView ext,
                    const PackedRowPanels& b, Matrix& c);

/// Fused extent-restricted dot with ReLU applied to `a` on the fly:
/// sum over spans of max(a[c], 0) * packed value.  `packed_row` points at
/// one panel row (PackedRowPanels::row).  This is the ancestral samplers'
/// logit primitive — FastMadeSampler and ModelSnapshot::sample share it so
/// their draws stay mutually bit-identical.
Real relu_dot_panels(std::span<const ColSpan> spans, const Real* a,
                     const Real* packed_row);

/// Batched relu_dot_panels over `rows` activation rows sharing one packed
/// panel row: out[r] = relu_dot_panels(spans, a + r * lda, packed_row),
/// bitwise, for every r.  `a` is a row-major block with leading dimension
/// `lda`.  This is the batched conditional engine's per-site logit kernel —
/// one call evaluates site i's logit for the whole micro-batch with 4-row
/// register blocking, so batching never perturbs a row's value.
void relu_dot_panels_batch(std::span<const ColSpan> spans, const Real* a,
                           std::size_t lda, std::size_t rows,
                           const Real* packed_row, Real* out);

/// Blocked relu_dot_panels over panel rows [row_begin, ext.rows()) and a
/// fixed activation block: out(i - row_begin, r) is bitwise identical to
/// relu_dot_panels(ext.row(i), a + r * lda, panels.row(i)) for every cell.
/// `out` must be pre-shaped (ext.rows() - row_begin) x rows.  This is the
/// conditional engine's frozen-tail kernel: once no remaining site can
/// change the pre-activations, all remaining logits are one blocked pass
/// with row-tile-outer ordering (activation rows stay cache-resident while
/// the packed panels stream once per tile) instead of a per-site sweep
/// that re-reads the whole activation block for every site.
void relu_dot_panels_block(RowExtentsView ext, const PackedRowPanels& panels,
                           std::size_t row_begin, const Real* a,
                           std::size_t lda, std::size_t rows, Matrix& out);

/// Plain-dot sibling of relu_dot_panels_block for callers that already hold
/// the materialized rectified activations: dot_panels_block(ext, p, rb,
/// relu(a), ...) is bitwise identical per cell to relu_dot_panels_block(ext,
/// p, rb, a, ...) — the dot4/dot accumulation structure is the same, only
/// the per-element vmax disappears from the inner loop.  Worth it when one
/// activation block feeds many output rows (the frozen tail rectifies once
/// and streams ~n-h sites over the result).
void dot_panels_block(RowExtentsView ext, const PackedRowPanels& panels,
                      std::size_t row_begin, const Real* a, std::size_t lda,
                      std::size_t rows, Matrix& out);

/// a[r][col_begin + t] += vals[t] for every r in `row_ids` — the samplers'
/// gathered rank-1 update when a masked column's active rows form one
/// interval.  Bitwise identical to the scalar per-row += walk (the fused
/// multiplier is exactly one), with one dispatched call covering all
/// flipped rows of a site.
void rank1_add_rows(Real* a, std::size_t lda,
                    std::span<const std::uint32_t> row_ids,
                    std::size_t col_begin, const Real* vals, std::size_t len);

/// dst[0..len) += cols[b][0..len) for every set bit b of `mask`, ascending.
/// The deferred half of the samplers' blocked rank-1 update: one call
/// applies every recorded flip of a 64-site block to one activation row
/// while that row is cache-resident.  Ascending bit order and the unit fma
/// multiplier keep the result bitwise identical to applying each add at
/// its original site.
void accumulate_masked_cols(Real* dst, std::uint64_t mask,
                            const Real* const* cols, std::size_t len);

/// sum_i log(max(x_i != 0 ? p_i : 1 - p_i, eps)) — the Bernoulli
/// log-likelihood of binary configuration x under conditionals p (length
/// x.size()).  For x in {0,1}^n this equals the textbook
/// x log p + (1-x) log(1-p) with both logs clamped at eps.  Vectorized
/// with the polynomial log; per-row primitive (batch-position independent).
Real bernoulli_log_likelihood(std::span<const Real> x, const Real* p,
                              Real eps);

// ---------------------------------------------------------------------------
// Elementwise / broadcast operations used by the NN layers.
// ---------------------------------------------------------------------------

/// Add bias vector b (length n) to every row of A (rows x n).
void add_row_broadcast(Matrix& a, std::span<const Real> b);

/// A := max(A, 0) elementwise; also usable as in-place ReLU.
void relu_inplace(Matrix& a);

/// grad := grad * 1[pre > 0] elementwise (ReLU backward through `pre`).
void relu_backward_inplace(const Matrix& pre, Matrix& grad);

/// A := sigmoid(A) elementwise, numerically stable for large |x|.
void sigmoid_inplace(Matrix& a);

/// Elementwise Hadamard product: C = A .* B (same shapes).
void hadamard(const Matrix& a, const Matrix& b, Matrix& c);

/// Column sums of A into out (length cols), accumulated: out += sum_r A(r,:).
void column_sum_accumulate(const Matrix& a, std::span<Real> out);

/// Stable elementwise sigmoid of a scalar.
Real sigmoid(Real x);

/// log(cosh(x)) computed stably for large |x| (|x| + log((1+e^-2|x|)/2)).
Real log_cosh(Real x);

}  // namespace vqmc
