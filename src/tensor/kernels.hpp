#pragma once

/// \file kernels.hpp
/// \brief BLAS-like dense kernels on Matrix / Vector.
///
/// Naming follows BLAS transpose conventions: `gemm_nt` computes
/// C = A * B^T, `gemm_tn` computes C = A^T * B, etc.  All kernels are
/// OpenMP-parallel over the independent output dimension; they form the
/// compute substrate that stands in for the paper's GPU matmuls (the MADE /
/// RBM forward and backward passes are nothing but these calls).
///
/// Kernels either overwrite (`gemm*`, `gemv*`) or accumulate
/// (`*_accumulate`); the accumulate forms are used to sum gradients over a
/// batch without temporaries.

#include <span>

#include "tensor/matrix.hpp"
#include "tensor/vector.hpp"

namespace vqmc {

// ---------------------------------------------------------------------------
// Level-1: vector-vector.
// ---------------------------------------------------------------------------

/// Dot product <x, y>.
Real dot(std::span<const Real> x, std::span<const Real> y);

/// y += alpha * x.
void axpy(Real alpha, std::span<const Real> x, std::span<Real> y);

/// x *= alpha.
void scale(std::span<Real> x, Real alpha);

/// Sum of elements (pairwise accumulation: O(log N)-ulp error bound, so
/// million-row batch statistics stay accurate).
Real sum(std::span<const Real> x);

/// Arithmetic mean (0 for empty spans; pairwise accumulation).
Real mean(std::span<const Real> x);

/// Population variance (division by N; 0 for empty spans; two-pass with
/// pairwise accumulation of the squared deviations).
Real variance(std::span<const Real> x);

// ---------------------------------------------------------------------------
// Level-2: matrix-vector.
// ---------------------------------------------------------------------------

/// y = A x (A: m x k, x: k, y: m).
void gemv(const Matrix& a, std::span<const Real> x, std::span<Real> y);

/// y = A^T x (A: m x k, x: m, y: k).
void gemv_t(const Matrix& a, std::span<const Real> x, std::span<Real> y);

// ---------------------------------------------------------------------------
// Level-3: matrix-matrix.
// ---------------------------------------------------------------------------

/// C = A B      (A: m x k, B: k x n, C: m x n).
void gemm_nn(const Matrix& a, const Matrix& b, Matrix& c);

/// C = A B^T    (A: m x k, B: n x k, C: m x n).
void gemm_nt(const Matrix& a, const Matrix& b, Matrix& c);

/// C += A^T B   (A: k x m, B: k x n, C: m x n). Accumulating form used for
/// weight gradients summed over the batch (k = batch) dimension.
void gemm_tn_accumulate(const Matrix& a, const Matrix& b, Matrix& c);

// ---------------------------------------------------------------------------
// Elementwise / broadcast operations used by the NN layers.
// ---------------------------------------------------------------------------

/// Add bias vector b (length n) to every row of A (rows x n).
void add_row_broadcast(Matrix& a, std::span<const Real> b);

/// A := max(A, 0) elementwise; also usable as in-place ReLU.
void relu_inplace(Matrix& a);

/// grad := grad * 1[pre > 0] elementwise (ReLU backward through `pre`).
void relu_backward_inplace(const Matrix& pre, Matrix& grad);

/// A := sigmoid(A) elementwise, numerically stable for large |x|.
void sigmoid_inplace(Matrix& a);

/// Elementwise Hadamard product: C = A .* B (same shapes).
void hadamard(const Matrix& a, const Matrix& b, Matrix& c);

/// Column sums of A into out (length cols), accumulated: out += sum_r A(r,:).
void column_sum_accumulate(const Matrix& a, std::span<Real> out);

/// Stable elementwise sigmoid of a scalar.
Real sigmoid(Real x);

/// log(cosh(x)) computed stably for large |x| (|x| + log((1+e^-2|x|)/2)).
Real log_cosh(Real x);

}  // namespace vqmc
