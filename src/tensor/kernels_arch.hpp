#pragma once

/// \file kernels_arch.hpp
/// \brief Internal declarations of the per-ISA kernel implementations.
///
/// kernels_arch.inc is compiled once per instruction-set tier (generic /
/// AVX2+FMA / AVX-512) into the namespaces declared here; kernels.cpp
/// selects among them at runtime via simd::active_level().  This header is
/// private to the tensor library — everything public goes through
/// kernels.hpp.
///
/// Implementations assume shapes already validated by the dispatcher and
/// must follow the canonical accumulation pattern documented in
/// kernels_arch.inc (per-output-row rounding independent of blocking, so
/// batching never perturbs a row's value).

#include <cstddef>
#include <span>

#include "tensor/kernels.hpp"

namespace vqmc {

#define VQMC_DECLARE_ARCH_KERNELS(ns)                                         \
  namespace ns {                                                              \
  Real dot(std::span<const Real> x, std::span<const Real> y);                 \
  void axpy(Real alpha, std::span<const Real> x, std::span<Real> y);          \
  void gemv(const Matrix& a, std::span<const Real> x, std::span<Real> y);     \
  void gemv_t(const Matrix& a, std::span<const Real> x, std::span<Real> y);   \
  void gemm_nn(const Matrix& a, const Matrix& b, Matrix& c);                  \
  void gemm_nt(const Matrix& a, const Matrix& b, Matrix& c);                  \
  void gemm_tn_accumulate(const Matrix& a, const Matrix& b, Matrix& c);       \
  void gemv_extents(const Matrix& a, RowExtentsView ext,                      \
                    std::span<const Real> x, std::span<Real> y);              \
  void gemm_nt_extents(const Matrix& a, const Matrix& b, RowExtentsView ext,  \
                       Matrix& c);                                            \
  void gemm_nt_panels(const Matrix& a, RowExtentsView ext,                    \
                      const PackedRowPanels& b, Matrix& c);                   \
  void gemm_nn_extents(const Matrix& a, const Matrix& b, RowExtentsView ext,  \
                       Matrix& c);                                            \
  void gemm_tn_accumulate_extents(const Matrix& a, const Matrix& b,           \
                                  RowExtentsView ext, Matrix& c);             \
  Real relu_dot_panels(std::span<const ColSpan> spans, const Real* a,         \
                       const Real* packed_row);                               \
  void relu_dot_panels_batch(std::span<const ColSpan> spans, const Real* a,   \
                             std::size_t lda, std::size_t rows,               \
                             const Real* packed_row, Real* out);              \
  void relu_dot_panels_block(RowExtentsView ext, const PackedRowPanels& p,    \
                             std::size_t row_begin, const Real* a,            \
                             std::size_t lda, std::size_t rows, Matrix& out); \
  void dot_panels_block(RowExtentsView ext, const PackedRowPanels& p,         \
                        std::size_t row_begin, const Real* a,                 \
                        std::size_t lda, std::size_t rows, Matrix& out);      \
  void rank1_add_rows(Real* a, std::size_t lda,                               \
                      std::span<const std::uint32_t> row_ids,                 \
                      std::size_t col_begin, const Real* vals,                \
                      std::size_t len);                                       \
  void accumulate_masked_cols(Real* dst, std::uint64_t mask,                  \
                              const Real* const* cols, std::size_t len);      \
  Real bernoulli_log_likelihood(std::span<const Real> x, const Real* p,       \
                                Real eps);                                    \
  void sigmoid_inplace(Matrix& a);                                            \
  }

VQMC_DECLARE_ARCH_KERNELS(arch_generic)
#if VQMC_SIMD_AVX2
VQMC_DECLARE_ARCH_KERNELS(arch_avx2)
#endif
#if VQMC_SIMD_AVX512
VQMC_DECLARE_ARCH_KERNELS(arch_avx512)
#endif

#undef VQMC_DECLARE_ARCH_KERNELS

}  // namespace vqmc
