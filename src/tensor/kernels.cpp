#include "tensor/kernels.hpp"

#include <cmath>

#include "common/error.hpp"
#include "tensor/kernels_arch.hpp"
#include "tensor/simd.hpp"

namespace vqmc {

// ---------------------------------------------------------------------------
// Runtime dispatch: shape validation happens once here, then the call is
// forwarded to the ISA implementation selected by simd::active_level()
// (kernels_arch.inc compiled per tier).  Tiers that were not compiled in
// cannot be active (the level is clamped to the compiled cap), so the
// default case is always the generic build.
// ---------------------------------------------------------------------------

#if VQMC_SIMD_AVX512
#define VQMC_CASE_AVX512(call) \
  case simd::Level::kAvx512:   \
    return arch_avx512::call;
#else
#define VQMC_CASE_AVX512(call)
#endif
#if VQMC_SIMD_AVX2
#define VQMC_CASE_AVX2(call) \
  case simd::Level::kAvx2:   \
    return arch_avx2::call;
#else
#define VQMC_CASE_AVX2(call)
#endif
#define VQMC_DISPATCH(call)       \
  switch (simd::active_level()) { \
    VQMC_CASE_AVX512(call)        \
    VQMC_CASE_AVX2(call)          \
    default:                      \
      return arch_generic::call;  \
  }

Real dot(std::span<const Real> x, std::span<const Real> y) {
  VQMC_REQUIRE(x.size() == y.size(), "dot: size mismatch");
  VQMC_DISPATCH(dot(x, y))
}

void axpy(Real alpha, std::span<const Real> x, std::span<Real> y) {
  VQMC_REQUIRE(x.size() == y.size(), "axpy: size mismatch");
  VQMC_DISPATCH(axpy(alpha, x, y))
}

void scale(std::span<Real> x, Real alpha) {
  for (Real& v : x) v *= alpha;
}

namespace {

/// Pairwise (cascade) summation: splitting the range in halves keeps the
/// rounding error at O(log N) ulps instead of the O(N) of a running
/// accumulator — at batch sizes >= 1e6 (the serving and weak-scaling
/// regimes) a naive sum visibly biases mean/variance estimates.  The leaf
/// size keeps the recursion shallow while leaving the leaf loop
/// vectorizable.
constexpr std::size_t kPairwiseLeaf = 64;

Real pairwise_sum(const Real* x, std::size_t count) {
  if (count <= kPairwiseLeaf) {
    Real acc = 0;
    for (std::size_t i = 0; i < count; ++i) acc += x[i];
    return acc;
  }
  const std::size_t half = count / 2;
  return pairwise_sum(x, half) + pairwise_sum(x + half, count - half);
}

Real pairwise_sum_sq_dev(const Real* x, std::size_t count, Real center) {
  if (count <= kPairwiseLeaf) {
    Real acc = 0;
    for (std::size_t i = 0; i < count; ++i) {
      const Real d = x[i] - center;
      acc += d * d;
    }
    return acc;
  }
  const std::size_t half = count / 2;
  return pairwise_sum_sq_dev(x, half, center) +
         pairwise_sum_sq_dev(x + half, count - half, center);
}

}  // namespace

Real sum(std::span<const Real> x) { return pairwise_sum(x.data(), x.size()); }

Real mean(std::span<const Real> x) {
  if (x.empty()) return 0;
  return sum(x) / Real(x.size());
}

Real variance(std::span<const Real> x) {
  if (x.empty()) return 0;
  const Real m = mean(x);
  return pairwise_sum_sq_dev(x.data(), x.size(), m) / Real(x.size());
}

void gemv(const Matrix& a, std::span<const Real> x, std::span<Real> y) {
  VQMC_REQUIRE(a.cols() == x.size() && a.rows() == y.size(),
               "gemv: shape mismatch");
  VQMC_DISPATCH(gemv(a, x, y))
}

void gemv_t(const Matrix& a, std::span<const Real> x, std::span<Real> y) {
  VQMC_REQUIRE(a.rows() == x.size() && a.cols() == y.size(),
               "gemv_t: shape mismatch");
  VQMC_DISPATCH(gemv_t(a, x, y))
}

void gemm_nn(const Matrix& a, const Matrix& b, Matrix& c) {
  VQMC_REQUIRE(a.cols() == b.rows() && c.rows() == a.rows() &&
                   c.cols() == b.cols(),
               "gemm_nn: shape mismatch");
  VQMC_DISPATCH(gemm_nn(a, b, c))
}

void gemm_nt(const Matrix& a, const Matrix& b, Matrix& c) {
  VQMC_REQUIRE(a.cols() == b.cols() && c.rows() == a.rows() &&
                   c.cols() == b.rows(),
               "gemm_nt: shape mismatch");
  VQMC_DISPATCH(gemm_nt(a, b, c))
}

void gemm_tn_accumulate(const Matrix& a, const Matrix& b, Matrix& c) {
  VQMC_REQUIRE(a.rows() == b.rows() && c.rows() == a.cols() &&
                   c.cols() == b.cols(),
               "gemm_tn_accumulate: shape mismatch");
  VQMC_DISPATCH(gemm_tn_accumulate(a, b, c))
}

RowExtents RowExtents::from_mask(const Matrix& mask) {
  RowExtents ext;
  const std::size_t rows = mask.rows(), cols = mask.cols();
  ext.row_ptr_.reserve(rows + 1);
  for (std::size_t r = 0; r < rows; ++r) {
    const Real* row = mask.data() + r * cols;
    std::size_t c = 0;
    while (c < cols) {
      while (c < cols && row[c] == Real(0)) ++c;
      if (c == cols) break;
      const std::size_t begin = c;
      while (c < cols && row[c] != Real(0)) ++c;
      ext.spans_.push_back({begin, c});
      ext.nonzeros_ += c - begin;
    }
    ext.row_ptr_.push_back(ext.spans_.size());
  }
  return ext;
}

PackedRowPanels PackedRowPanels::pack(const Matrix& b, RowExtentsView ext) {
  VQMC_REQUIRE(ext.rows() == b.rows(),
               "PackedRowPanels::pack: extent row mismatch");
  PackedRowPanels p;
  const std::size_t rows = ext.rows();
  p.offsets_.resize(rows + 1);
  std::size_t total = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    p.offsets_[r] = total;
    for (const ColSpan& s : ext.row(r)) total += s.end - s.begin;
  }
  p.offsets_[rows] = total;
  p.values_ = AlignedBuffer<Real>(total);
  p.refill(b, ext);
  return p;
}

void PackedRowPanels::refill(const Matrix& b, RowExtentsView ext) {
  VQMC_REQUIRE(ext.rows() == rows() && b.rows() == rows(),
               "PackedRowPanels::refill: row mismatch");
  const std::size_t nrows = rows();
  for (std::size_t r = 0; r < nrows; ++r) {
    const Real* brow = b.data() + r * b.cols();
    Real* dst = values_.data() + offsets_[r];
    for (const ColSpan& s : ext.row(r))
      for (std::size_t c = s.begin; c < s.end; ++c) *dst++ = brow[c];
    VQMC_REQUIRE(dst == values_.data() + offsets_[r + 1],
                 "PackedRowPanels::refill: extent geometry changed");
  }
}

void gemv_extents(const Matrix& a, RowExtentsView ext, std::span<const Real> x,
                  std::span<Real> y) {
  VQMC_REQUIRE(a.cols() == x.size() && a.rows() == y.size(),
               "gemv_extents: shape mismatch");
  VQMC_REQUIRE(ext.rows() == a.rows(), "gemv_extents: extent row mismatch");
  VQMC_DISPATCH(gemv_extents(a, ext, x, y))
}

void gemm_nt_extents(const Matrix& a, const Matrix& b, RowExtentsView ext,
                     Matrix& c) {
  VQMC_REQUIRE(a.cols() == b.cols() && c.rows() == a.rows() &&
                   c.cols() == b.rows(),
               "gemm_nt_extents: shape mismatch");
  VQMC_REQUIRE(ext.rows() == b.rows(), "gemm_nt_extents: extent row mismatch");
  VQMC_DISPATCH(gemm_nt_extents(a, b, ext, c))
}

void gemm_nt_panels(const Matrix& a, RowExtentsView ext,
                    const PackedRowPanels& b, Matrix& c) {
  VQMC_REQUIRE(c.rows() == a.rows() && c.cols() == b.rows(),
               "gemm_nt_panels: shape mismatch");
  VQMC_REQUIRE(ext.rows() == b.rows(), "gemm_nt_panels: extent row mismatch");
  VQMC_DISPATCH(gemm_nt_panels(a, ext, b, c))
}

void gemm_nn_extents(const Matrix& a, const Matrix& b, RowExtentsView ext,
                     Matrix& c) {
  VQMC_REQUIRE(a.cols() == b.rows() && c.rows() == a.rows() &&
                   c.cols() == b.cols(),
               "gemm_nn_extents: shape mismatch");
  VQMC_REQUIRE(ext.rows() == b.rows(), "gemm_nn_extents: extent row mismatch");
  VQMC_DISPATCH(gemm_nn_extents(a, b, ext, c))
}

void gemm_tn_accumulate_extents(const Matrix& a, const Matrix& b,
                                RowExtentsView ext, Matrix& c) {
  VQMC_REQUIRE(a.rows() == b.rows() && c.rows() == a.cols() &&
                   c.cols() == b.cols(),
               "gemm_tn_accumulate_extents: shape mismatch");
  VQMC_REQUIRE(ext.rows() == c.rows(),
               "gemm_tn_accumulate_extents: extent row mismatch");
  VQMC_DISPATCH(gemm_tn_accumulate_extents(a, b, ext, c))
}

Real relu_dot_panels(std::span<const ColSpan> spans, const Real* a,
                     const Real* packed_row) {
  VQMC_DISPATCH(relu_dot_panels(spans, a, packed_row))
}

void relu_dot_panels_batch(std::span<const ColSpan> spans, const Real* a,
                           std::size_t lda, std::size_t rows,
                           const Real* packed_row, Real* out) {
  VQMC_DISPATCH(relu_dot_panels_batch(spans, a, lda, rows, packed_row, out))
}

void relu_dot_panels_block(RowExtentsView ext, const PackedRowPanels& panels,
                           std::size_t row_begin, const Real* a,
                           std::size_t lda, std::size_t rows, Matrix& out) {
  VQMC_REQUIRE(out.rows() == ext.rows() - row_begin && out.cols() == rows,
               "relu_dot_panels_block: output shape mismatch");
  VQMC_DISPATCH(relu_dot_panels_block(ext, panels, row_begin, a, lda, rows, out))
}

void dot_panels_block(RowExtentsView ext, const PackedRowPanels& panels,
                      std::size_t row_begin, const Real* a, std::size_t lda,
                      std::size_t rows, Matrix& out) {
  VQMC_REQUIRE(out.rows() == ext.rows() - row_begin && out.cols() == rows,
               "dot_panels_block: output shape mismatch");
  VQMC_DISPATCH(dot_panels_block(ext, panels, row_begin, a, lda, rows, out))
}

void rank1_add_rows(Real* a, std::size_t lda,
                    std::span<const std::uint32_t> row_ids,
                    std::size_t col_begin, const Real* vals, std::size_t len) {
  VQMC_DISPATCH(rank1_add_rows(a, lda, row_ids, col_begin, vals, len))
}

void accumulate_masked_cols(Real* dst, std::uint64_t mask,
                            const Real* const* cols, std::size_t len) {
  VQMC_DISPATCH(accumulate_masked_cols(dst, mask, cols, len))
}

Real bernoulli_log_likelihood(std::span<const Real> x, const Real* p,
                              Real eps) {
  VQMC_DISPATCH(bernoulli_log_likelihood(x, p, eps))
}

void extents_zero(Matrix& a, RowExtentsView ext) {
  VQMC_REQUIRE(ext.rows() == a.rows(), "extents_zero: extent row mismatch");
  const std::size_t m = a.rows(), n = a.cols();
  Real* pa = a.data();
#pragma omp parallel for schedule(static)
  for (std::size_t r = 0; r < m; ++r) {
    Real* row = pa + r * n;
    for (const ColSpan& s : ext.row(r))
      for (std::size_t c = s.begin; c < s.end; ++c) row[c] = 0;
  }
}

void extents_add_flat(const Matrix& src, RowExtentsView ext,
                      std::span<Real> dst) {
  VQMC_REQUIRE(ext.rows() == src.rows(),
               "extents_add_flat: extent row mismatch");
  VQMC_REQUIRE(dst.size() == src.size(), "extents_add_flat: size mismatch");
  const std::size_t m = src.rows(), n = src.cols();
  const Real* ps = src.data();
  Real* pd = dst.data();
#pragma omp parallel for schedule(static)
  for (std::size_t r = 0; r < m; ++r) {
    const Real* srow = ps + r * n;
    Real* drow = pd + r * n;
    for (const ColSpan& s : ext.row(r))
      for (std::size_t c = s.begin; c < s.end; ++c) drow[c] += srow[c];
  }
}

void add_row_broadcast(Matrix& a, std::span<const Real> b) {
  VQMC_REQUIRE(a.cols() == b.size(), "add_row_broadcast: shape mismatch");
  const std::size_t m = a.rows(), n = a.cols();
  Real* pa = a.data();
#pragma omp parallel for schedule(static)
  for (std::size_t r = 0; r < m; ++r) {
    Real* row = pa + r * n;
    for (std::size_t c = 0; c < n; ++c) row[c] += b[c];
  }
}

void relu_inplace(Matrix& a) {
  Real* p = a.data();
  const std::size_t total = a.size();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < total; ++i) p[i] = p[i] > 0 ? p[i] : 0;
}

void relu_backward_inplace(const Matrix& pre, Matrix& grad) {
  VQMC_REQUIRE(pre.rows() == grad.rows() && pre.cols() == grad.cols(),
               "relu_backward: shape mismatch");
  const Real* pp = pre.data();
  Real* pg = grad.data();
  const std::size_t total = grad.size();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < total; ++i) {
    if (pp[i] <= 0) pg[i] = 0;
  }
}

void sigmoid_inplace(Matrix& a) { VQMC_DISPATCH(sigmoid_inplace(a)) }

void hadamard(const Matrix& a, const Matrix& b, Matrix& c) {
  VQMC_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols() &&
                   a.rows() == c.rows() && a.cols() == c.cols(),
               "hadamard: shape mismatch");
  const Real* pa = a.data();
  const Real* pb = b.data();
  Real* pc = c.data();
  const std::size_t total = a.size();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < total; ++i) pc[i] = pa[i] * pb[i];
}

void column_sum_accumulate(const Matrix& a, std::span<Real> out) {
  VQMC_REQUIRE(a.cols() == out.size(), "column_sum: shape mismatch");
  const std::size_t m = a.rows(), n = a.cols();
  const Real* pa = a.data();
  for (std::size_t r = 0; r < m; ++r) {
    const Real* row = pa + r * n;
    for (std::size_t c = 0; c < n; ++c) out[c] += row[c];
  }
}

Real sigmoid(Real x) {
  // Branch to avoid overflow in exp for large negative arguments.
  if (x >= 0) {
    const Real z = std::exp(-x);
    return 1 / (1 + z);
  }
  const Real z = std::exp(x);
  return z / (1 + z);
}

Real log_cosh(Real x) {
  const Real ax = std::fabs(x);
  // log cosh x = |x| + log(1 + exp(-2|x|)) - log 2.
  return ax + std::log1p(std::exp(-2 * ax)) - Real(0.6931471805599453);
}

}  // namespace vqmc
