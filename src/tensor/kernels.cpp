#include "tensor/kernels.hpp"

#include <cmath>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "common/error.hpp"

namespace vqmc {

Real dot(std::span<const Real> x, std::span<const Real> y) {
  VQMC_REQUIRE(x.size() == y.size(), "dot: size mismatch");
  Real acc = 0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

void axpy(Real alpha, std::span<const Real> x, std::span<Real> y) {
  VQMC_REQUIRE(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(std::span<Real> x, Real alpha) {
  for (Real& v : x) v *= alpha;
}

namespace {

/// Pairwise (cascade) summation: splitting the range in halves keeps the
/// rounding error at O(log N) ulps instead of the O(N) of a running
/// accumulator — at batch sizes >= 1e6 (the serving and weak-scaling
/// regimes) a naive sum visibly biases mean/variance estimates.  The leaf
/// size keeps the recursion shallow while leaving the leaf loop
/// vectorizable.
constexpr std::size_t kPairwiseLeaf = 64;

Real pairwise_sum(const Real* x, std::size_t count) {
  if (count <= kPairwiseLeaf) {
    Real acc = 0;
    for (std::size_t i = 0; i < count; ++i) acc += x[i];
    return acc;
  }
  const std::size_t half = count / 2;
  return pairwise_sum(x, half) + pairwise_sum(x + half, count - half);
}

Real pairwise_sum_sq_dev(const Real* x, std::size_t count, Real center) {
  if (count <= kPairwiseLeaf) {
    Real acc = 0;
    for (std::size_t i = 0; i < count; ++i) {
      const Real d = x[i] - center;
      acc += d * d;
    }
    return acc;
  }
  const std::size_t half = count / 2;
  return pairwise_sum_sq_dev(x, half, center) +
         pairwise_sum_sq_dev(x + half, count - half, center);
}

}  // namespace

Real sum(std::span<const Real> x) { return pairwise_sum(x.data(), x.size()); }

Real mean(std::span<const Real> x) {
  if (x.empty()) return 0;
  return sum(x) / Real(x.size());
}

Real variance(std::span<const Real> x) {
  if (x.empty()) return 0;
  const Real m = mean(x);
  return pairwise_sum_sq_dev(x.data(), x.size(), m) / Real(x.size());
}

void gemv(const Matrix& a, std::span<const Real> x, std::span<Real> y) {
  VQMC_REQUIRE(a.cols() == x.size() && a.rows() == y.size(),
               "gemv: shape mismatch");
  const std::size_t m = a.rows(), k = a.cols();
  const Real* pa = a.data();
#pragma omp parallel for schedule(static)
  for (std::size_t r = 0; r < m; ++r) {
    const Real* row = pa + r * k;
    Real acc = 0;
    for (std::size_t c = 0; c < k; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
}

void gemv_t(const Matrix& a, std::span<const Real> x, std::span<Real> y) {
  VQMC_REQUIRE(a.rows() == x.size() && a.cols() == y.size(),
               "gemv_t: shape mismatch");
  const std::size_t m = a.rows(), k = a.cols();
  const Real* pa = a.data();
  // The output dimension is the reduction dimension here, so row-parallel
  // threads would race on y.  Each thread therefore accumulates its row
  // range into a private k-vector (row-major traversal keeps A accesses
  // contiguous) and the partials are merged column-parallel afterwards.
  // This sits in the SR optimizer's CG inner loop, where m is the batch and
  // k the parameter count.
#ifdef _OPENMP
  const int threads = omp_get_max_threads();
  if (threads > 1 && m >= 2) {
    Vector partials(std::size_t(threads) * k);  // zero-initialized
#pragma omp parallel
    {
      Real* local = partials.data() + std::size_t(omp_get_thread_num()) * k;
#pragma omp for schedule(static)
      for (std::size_t r = 0; r < m; ++r) {
        const Real* row = pa + r * k;
        const Real xr = x[r];
        for (std::size_t c = 0; c < k; ++c) local[c] += xr * row[c];
      }
      // The implicit barrier after the row loop makes every partial visible
      // before the column-parallel merge below.
#pragma omp for schedule(static)
      for (std::size_t c = 0; c < k; ++c) {
        Real acc = 0;
        for (int t = 0; t < threads; ++t)
          acc += partials[std::size_t(t) * k + c];
        y[c] = acc;
      }
    }
    return;
  }
#endif
  for (std::size_t c = 0; c < k; ++c) y[c] = 0;
  for (std::size_t r = 0; r < m; ++r) {
    const Real* row = pa + r * k;
    const Real xr = x[r];
    for (std::size_t c = 0; c < k; ++c) y[c] += xr * row[c];
  }
}

void gemm_nn(const Matrix& a, const Matrix& b, Matrix& c) {
  VQMC_REQUIRE(a.cols() == b.rows() && c.rows() == a.rows() &&
                   c.cols() == b.cols(),
               "gemm_nn: shape mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  const Real* pa = a.data();
  const Real* pb = b.data();
  Real* pc = c.data();
#pragma omp parallel for schedule(static)
  for (std::size_t r = 0; r < m; ++r) {
    Real* crow = pc + r * n;
    for (std::size_t j = 0; j < n; ++j) crow[j] = 0;
    const Real* arow = pa + r * k;
    for (std::size_t l = 0; l < k; ++l) {
      const Real av = arow[l];
      const Real* brow = pb + l * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_nt(const Matrix& a, const Matrix& b, Matrix& c) {
  VQMC_REQUIRE(a.cols() == b.cols() && c.rows() == a.rows() &&
                   c.cols() == b.rows(),
               "gemm_nt: shape mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  const Real* pa = a.data();
  const Real* pb = b.data();
  Real* pc = c.data();
#pragma omp parallel for schedule(static)
  for (std::size_t r = 0; r < m; ++r) {
    const Real* arow = pa + r * k;
    Real* crow = pc + r * n;
    for (std::size_t j = 0; j < n; ++j) {
      const Real* brow = pb + j * k;
      Real acc = 0;
      for (std::size_t l = 0; l < k; ++l) acc += arow[l] * brow[l];
      crow[j] = acc;
    }
  }
}

void gemm_tn_accumulate(const Matrix& a, const Matrix& b, Matrix& c) {
  VQMC_REQUIRE(a.rows() == b.rows() && c.rows() == a.cols() &&
                   c.cols() == b.cols(),
               "gemm_tn_accumulate: shape mismatch");
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  const Real* pa = a.data();
  const Real* pb = b.data();
  Real* pc = c.data();
  // Parallelize over output rows; each output row c(r, :) is a weighted sum
  // of rows of B with weights from column r of A.
#pragma omp parallel for schedule(static)
  for (std::size_t r = 0; r < m; ++r) {
    Real* crow = pc + r * n;
    for (std::size_t l = 0; l < k; ++l) {
      const Real av = pa[l * m + r];
      if (av == Real(0)) continue;
      const Real* brow = pb + l * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

RowExtents RowExtents::from_mask(const Matrix& mask) {
  RowExtents ext;
  const std::size_t rows = mask.rows(), cols = mask.cols();
  ext.row_ptr_.reserve(rows + 1);
  for (std::size_t r = 0; r < rows; ++r) {
    const Real* row = mask.data() + r * cols;
    std::size_t c = 0;
    while (c < cols) {
      while (c < cols && row[c] == Real(0)) ++c;
      if (c == cols) break;
      const std::size_t begin = c;
      while (c < cols && row[c] != Real(0)) ++c;
      ext.spans_.push_back({begin, c});
      ext.nonzeros_ += c - begin;
    }
    ext.row_ptr_.push_back(ext.spans_.size());
  }
  return ext;
}

void gemv_extents(const Matrix& a, RowExtentsView ext, std::span<const Real> x,
                  std::span<Real> y) {
  VQMC_REQUIRE(a.cols() == x.size() && a.rows() == y.size(),
               "gemv_extents: shape mismatch");
  VQMC_REQUIRE(ext.rows() == a.rows(), "gemv_extents: extent row mismatch");
  const std::size_t m = a.rows(), k = a.cols();
  const Real* pa = a.data();
#pragma omp parallel for schedule(static)
  for (std::size_t r = 0; r < m; ++r) {
    const Real* row = pa + r * k;
    Real acc = 0;
    for (const ColSpan& s : ext.row(r))
      for (std::size_t c = s.begin; c < s.end; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
}

void gemm_nt_extents(const Matrix& a, const Matrix& b, RowExtentsView ext,
                     Matrix& c) {
  VQMC_REQUIRE(a.cols() == b.cols() && c.rows() == a.rows() &&
                   c.cols() == b.rows(),
               "gemm_nt_extents: shape mismatch");
  VQMC_REQUIRE(ext.rows() == b.rows(), "gemm_nt_extents: extent row mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  const Real* pa = a.data();
  const Real* pb = b.data();
  Real* pc = c.data();
#pragma omp parallel for schedule(static)
  for (std::size_t r = 0; r < m; ++r) {
    const Real* arow = pa + r * k;
    Real* crow = pc + r * n;
    for (std::size_t j = 0; j < n; ++j) {
      const Real* brow = pb + j * k;
      Real acc = 0;
      for (const ColSpan& s : ext.row(j))
        for (std::size_t l = s.begin; l < s.end; ++l)
          acc += arow[l] * brow[l];
      crow[j] = acc;
    }
  }
}

void gemm_nn_extents(const Matrix& a, const Matrix& b, RowExtentsView ext,
                     Matrix& c) {
  VQMC_REQUIRE(a.cols() == b.rows() && c.rows() == a.rows() &&
                   c.cols() == b.cols(),
               "gemm_nn_extents: shape mismatch");
  VQMC_REQUIRE(ext.rows() == b.rows(), "gemm_nn_extents: extent row mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  const Real* pa = a.data();
  const Real* pb = b.data();
  Real* pc = c.data();
#pragma omp parallel for schedule(static)
  for (std::size_t r = 0; r < m; ++r) {
    Real* crow = pc + r * n;
    for (std::size_t j = 0; j < n; ++j) crow[j] = 0;
    const Real* arow = pa + r * k;
    for (std::size_t l = 0; l < k; ++l) {
      const Real av = arow[l];
      const Real* brow = pb + l * n;
      for (const ColSpan& s : ext.row(l))
        for (std::size_t j = s.begin; j < s.end; ++j)
          crow[j] += av * brow[j];
    }
  }
}

void gemm_tn_accumulate_extents(const Matrix& a, const Matrix& b,
                                RowExtentsView ext, Matrix& c) {
  VQMC_REQUIRE(a.rows() == b.rows() && c.rows() == a.cols() &&
                   c.cols() == b.cols(),
               "gemm_tn_accumulate_extents: shape mismatch");
  VQMC_REQUIRE(ext.rows() == c.rows(),
               "gemm_tn_accumulate_extents: extent row mismatch");
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  const Real* pa = a.data();
  const Real* pb = b.data();
  Real* pc = c.data();
#pragma omp parallel for schedule(static)
  for (std::size_t r = 0; r < m; ++r) {
    Real* crow = pc + r * n;
    const std::span<const ColSpan> spans = ext.row(r);
    for (std::size_t l = 0; l < k; ++l) {
      const Real av = pa[l * m + r];
      if (av == Real(0)) continue;
      const Real* brow = pb + l * n;
      for (const ColSpan& s : spans)
        for (std::size_t j = s.begin; j < s.end; ++j)
          crow[j] += av * brow[j];
    }
  }
}

void extents_zero(Matrix& a, RowExtentsView ext) {
  VQMC_REQUIRE(ext.rows() == a.rows(), "extents_zero: extent row mismatch");
  const std::size_t m = a.rows(), n = a.cols();
  Real* pa = a.data();
#pragma omp parallel for schedule(static)
  for (std::size_t r = 0; r < m; ++r) {
    Real* row = pa + r * n;
    for (const ColSpan& s : ext.row(r))
      for (std::size_t c = s.begin; c < s.end; ++c) row[c] = 0;
  }
}

void extents_add_flat(const Matrix& src, RowExtentsView ext,
                      std::span<Real> dst) {
  VQMC_REQUIRE(ext.rows() == src.rows(),
               "extents_add_flat: extent row mismatch");
  VQMC_REQUIRE(dst.size() == src.size(), "extents_add_flat: size mismatch");
  const std::size_t m = src.rows(), n = src.cols();
  const Real* ps = src.data();
  Real* pd = dst.data();
#pragma omp parallel for schedule(static)
  for (std::size_t r = 0; r < m; ++r) {
    const Real* srow = ps + r * n;
    Real* drow = pd + r * n;
    for (const ColSpan& s : ext.row(r))
      for (std::size_t c = s.begin; c < s.end; ++c) drow[c] += srow[c];
  }
}

void add_row_broadcast(Matrix& a, std::span<const Real> b) {
  VQMC_REQUIRE(a.cols() == b.size(), "add_row_broadcast: shape mismatch");
  const std::size_t m = a.rows(), n = a.cols();
  Real* pa = a.data();
#pragma omp parallel for schedule(static)
  for (std::size_t r = 0; r < m; ++r) {
    Real* row = pa + r * n;
    for (std::size_t c = 0; c < n; ++c) row[c] += b[c];
  }
}

void relu_inplace(Matrix& a) {
  Real* p = a.data();
  const std::size_t total = a.size();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < total; ++i) p[i] = p[i] > 0 ? p[i] : 0;
}

void relu_backward_inplace(const Matrix& pre, Matrix& grad) {
  VQMC_REQUIRE(pre.rows() == grad.rows() && pre.cols() == grad.cols(),
               "relu_backward: shape mismatch");
  const Real* pp = pre.data();
  Real* pg = grad.data();
  const std::size_t total = grad.size();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < total; ++i) {
    if (pp[i] <= 0) pg[i] = 0;
  }
}

void sigmoid_inplace(Matrix& a) {
  Real* p = a.data();
  const std::size_t total = a.size();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < total; ++i) p[i] = sigmoid(p[i]);
}

void hadamard(const Matrix& a, const Matrix& b, Matrix& c) {
  VQMC_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols() &&
                   a.rows() == c.rows() && a.cols() == c.cols(),
               "hadamard: shape mismatch");
  const Real* pa = a.data();
  const Real* pb = b.data();
  Real* pc = c.data();
  const std::size_t total = a.size();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < total; ++i) pc[i] = pa[i] * pb[i];
}

void column_sum_accumulate(const Matrix& a, std::span<Real> out) {
  VQMC_REQUIRE(a.cols() == out.size(), "column_sum: shape mismatch");
  const std::size_t m = a.rows(), n = a.cols();
  const Real* pa = a.data();
  for (std::size_t r = 0; r < m; ++r) {
    const Real* row = pa + r * n;
    for (std::size_t c = 0; c < n; ++c) out[c] += row[c];
  }
}

Real sigmoid(Real x) {
  // Branch to avoid overflow in exp for large negative arguments.
  if (x >= 0) {
    const Real z = std::exp(-x);
    return 1 / (1 + z);
  }
  const Real z = std::exp(x);
  return z / (1 + z);
}

Real log_cosh(Real x) {
  const Real ax = std::fabs(x);
  // log cosh x = |x| + log(1 + exp(-2|x|)) - log 2.
  return ax + std::log1p(std::exp(-2 * ax)) - Real(0.6931471805599453);
}

}  // namespace vqmc
