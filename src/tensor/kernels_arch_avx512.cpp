// AVX-512 (F/DQ/VL) instantiation; compiled with the matching -m flags and
// only dispatched to after a runtime CPU check.
#define VQMC_ARCH_NS arch_avx512
#include "tensor/kernels_arch.inc"
