#pragma once

/// \file buffer.hpp
/// \brief Cache-line-aligned owning buffer for numeric data.
///
/// All tensor storage goes through AlignedBuffer so that the gemm/gemv
/// kernels can assume 64-byte alignment (one cache line; also sufficient for
/// AVX-512 loads if the compiler vectorizes).  The buffer value-initializes
/// its contents — freshly allocated tensors are zero.

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <utility>

#include "common/error.hpp"

namespace vqmc {

inline constexpr std::size_t kTensorAlignment = 64;

/// Owning, aligned, fixed-size array of T. Move-only semantics are not
/// needed; copying is deep (tensors are value types).
template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t count) { allocate(count); }

  AlignedBuffer(const AlignedBuffer& other) {
    allocate(other.size_);
    std::copy_n(other.data_, size_, data_);
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}

  AlignedBuffer& operator=(const AlignedBuffer& other) {
    if (this == &other) return *this;
    if (size_ != other.size_) {
      release();
      allocate(other.size_);
    }
    std::copy_n(other.data_, size_, data_);
    return *this;
  }

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this == &other) return *this;
    release();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    return *this;
  }

  ~AlignedBuffer() { release(); }

  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

 private:
  void allocate(std::size_t count) {
    size_ = count;
    if (count == 0) {
      data_ = nullptr;
      return;
    }
    const std::size_t bytes =
        (count * sizeof(T) + kTensorAlignment - 1) / kTensorAlignment *
        kTensorAlignment;
    void* raw = std::aligned_alloc(kTensorAlignment, bytes);
    if (raw == nullptr) throw std::bad_alloc();
    data_ = static_cast<T*>(raw);
    std::fill_n(data_, count, T{});
  }

  void release() noexcept {
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace vqmc
