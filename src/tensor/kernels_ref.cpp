#include "tensor/kernels_ref.hpp"

#include <cmath>

#include "common/error.hpp"

namespace vqmc::ref {

Real dot(std::span<const Real> x, std::span<const Real> y) {
  VQMC_REQUIRE(x.size() == y.size(), "ref::dot: size mismatch");
  Real acc = 0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

void gemv(const Matrix& a, std::span<const Real> x, std::span<Real> y) {
  VQMC_REQUIRE(a.cols() == x.size() && a.rows() == y.size(),
               "ref::gemv: shape mismatch");
  const std::size_t m = a.rows(), k = a.cols();
  const Real* pa = a.data();
  for (std::size_t r = 0; r < m; ++r) {
    const Real* row = pa + r * k;
    Real acc = 0;
    for (std::size_t c = 0; c < k; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
}

void gemv_t(const Matrix& a, std::span<const Real> x, std::span<Real> y) {
  VQMC_REQUIRE(a.rows() == x.size() && a.cols() == y.size(),
               "ref::gemv_t: shape mismatch");
  const std::size_t m = a.rows(), k = a.cols();
  const Real* pa = a.data();
  for (std::size_t c = 0; c < k; ++c) y[c] = 0;
  for (std::size_t r = 0; r < m; ++r) {
    const Real* row = pa + r * k;
    const Real xr = x[r];
    for (std::size_t c = 0; c < k; ++c) y[c] += xr * row[c];
  }
}

void gemm_nn(const Matrix& a, const Matrix& b, Matrix& c) {
  VQMC_REQUIRE(a.cols() == b.rows() && c.rows() == a.rows() &&
                   c.cols() == b.cols(),
               "ref::gemm_nn: shape mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  const Real* pa = a.data();
  const Real* pb = b.data();
  Real* pc = c.data();
  for (std::size_t r = 0; r < m; ++r) {
    Real* crow = pc + r * n;
    for (std::size_t j = 0; j < n; ++j) crow[j] = 0;
    const Real* arow = pa + r * k;
    for (std::size_t l = 0; l < k; ++l) {
      const Real av = arow[l];
      const Real* brow = pb + l * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_nt(const Matrix& a, const Matrix& b, Matrix& c) {
  VQMC_REQUIRE(a.cols() == b.cols() && c.rows() == a.rows() &&
                   c.cols() == b.rows(),
               "ref::gemm_nt: shape mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  const Real* pa = a.data();
  const Real* pb = b.data();
  Real* pc = c.data();
  for (std::size_t r = 0; r < m; ++r) {
    const Real* arow = pa + r * k;
    Real* crow = pc + r * n;
    for (std::size_t j = 0; j < n; ++j) {
      const Real* brow = pb + j * k;
      Real acc = 0;
      for (std::size_t l = 0; l < k; ++l) acc += arow[l] * brow[l];
      crow[j] = acc;
    }
  }
}

void gemm_tn_accumulate(const Matrix& a, const Matrix& b, Matrix& c) {
  VQMC_REQUIRE(a.rows() == b.rows() && c.rows() == a.cols() &&
                   c.cols() == b.cols(),
               "ref::gemm_tn_accumulate: shape mismatch");
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  const Real* pa = a.data();
  const Real* pb = b.data();
  Real* pc = c.data();
  for (std::size_t r = 0; r < m; ++r) {
    Real* crow = pc + r * n;
    for (std::size_t l = 0; l < k; ++l) {
      const Real av = pa[l * m + r];
      if (av == Real(0)) continue;
      const Real* brow = pb + l * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemv_extents(const Matrix& a, RowExtentsView ext, std::span<const Real> x,
                  std::span<Real> y) {
  VQMC_REQUIRE(a.cols() == x.size() && a.rows() == y.size(),
               "ref::gemv_extents: shape mismatch");
  VQMC_REQUIRE(ext.rows() == a.rows(),
               "ref::gemv_extents: extent row mismatch");
  const std::size_t m = a.rows(), k = a.cols();
  const Real* pa = a.data();
  for (std::size_t r = 0; r < m; ++r) {
    const Real* row = pa + r * k;
    Real acc = 0;
    for (const ColSpan& s : ext.row(r))
      for (std::size_t c = s.begin; c < s.end; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
}

void gemm_nt_extents(const Matrix& a, const Matrix& b, RowExtentsView ext,
                     Matrix& c) {
  VQMC_REQUIRE(a.cols() == b.cols() && c.rows() == a.rows() &&
                   c.cols() == b.rows(),
               "ref::gemm_nt_extents: shape mismatch");
  VQMC_REQUIRE(ext.rows() == b.rows(),
               "ref::gemm_nt_extents: extent row mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  const Real* pa = a.data();
  const Real* pb = b.data();
  Real* pc = c.data();
  for (std::size_t r = 0; r < m; ++r) {
    const Real* arow = pa + r * k;
    Real* crow = pc + r * n;
    for (std::size_t j = 0; j < n; ++j) {
      const Real* brow = pb + j * k;
      Real acc = 0;
      for (const ColSpan& s : ext.row(j))
        for (std::size_t l = s.begin; l < s.end; ++l) acc += arow[l] * brow[l];
      crow[j] = acc;
    }
  }
}

void gemm_nn_extents(const Matrix& a, const Matrix& b, RowExtentsView ext,
                     Matrix& c) {
  VQMC_REQUIRE(a.cols() == b.rows() && c.rows() == a.rows() &&
                   c.cols() == b.cols(),
               "ref::gemm_nn_extents: shape mismatch");
  VQMC_REQUIRE(ext.rows() == b.rows(),
               "ref::gemm_nn_extents: extent row mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  const Real* pa = a.data();
  const Real* pb = b.data();
  Real* pc = c.data();
  for (std::size_t r = 0; r < m; ++r) {
    Real* crow = pc + r * n;
    for (std::size_t j = 0; j < n; ++j) crow[j] = 0;
    const Real* arow = pa + r * k;
    for (std::size_t l = 0; l < k; ++l) {
      const Real av = arow[l];
      const Real* brow = pb + l * n;
      for (const ColSpan& s : ext.row(l))
        for (std::size_t j = s.begin; j < s.end; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_tn_accumulate_extents(const Matrix& a, const Matrix& b,
                                RowExtentsView ext, Matrix& c) {
  VQMC_REQUIRE(a.rows() == b.rows() && c.rows() == a.cols() &&
                   c.cols() == b.cols(),
               "ref::gemm_tn_accumulate_extents: shape mismatch");
  VQMC_REQUIRE(ext.rows() == c.rows(),
               "ref::gemm_tn_accumulate_extents: extent row mismatch");
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  const Real* pa = a.data();
  const Real* pb = b.data();
  Real* pc = c.data();
  for (std::size_t r = 0; r < m; ++r) {
    Real* crow = pc + r * n;
    const std::span<const ColSpan> spans = ext.row(r);
    for (std::size_t l = 0; l < k; ++l) {
      const Real av = pa[l * m + r];
      if (av == Real(0)) continue;
      const Real* brow = pb + l * n;
      for (const ColSpan& s : spans)
        for (std::size_t j = s.begin; j < s.end; ++j) crow[j] += av * brow[j];
    }
  }
}

Real relu_dot_panels(std::span<const ColSpan> spans, const Real* a,
                     const Real* packed_row) {
  Real acc = 0;
  const Real* bp = packed_row;
  for (const ColSpan& s : spans)
    for (std::size_t c = s.begin; c < s.end; ++c)
      acc += (a[c] > 0 ? a[c] : Real(0)) * *bp++;
  return acc;
}

void relu_dot_panels_batch(std::span<const ColSpan> spans, const Real* a,
                           std::size_t lda, std::size_t rows,
                           const Real* packed_row, Real* out) {
  for (std::size_t r = 0; r < rows; ++r)
    out[r] = ref::relu_dot_panels(spans, a + r * lda, packed_row);
}

void relu_dot_panels_block(RowExtentsView ext, const PackedRowPanels& panels,
                           std::size_t row_begin, const Real* a,
                           std::size_t lda, std::size_t rows, Matrix& out) {
  for (std::size_t site = row_begin; site < ext.rows(); ++site)
    for (std::size_t r = 0; r < rows; ++r)
      out(site - row_begin, r) =
          ref::relu_dot_panels(ext.row(site), a + r * lda, panels.row(site));
}

void dot_panels_block(RowExtentsView ext, const PackedRowPanels& panels,
                      std::size_t row_begin, const Real* a, std::size_t lda,
                      std::size_t rows, Matrix& out) {
  for (std::size_t site = row_begin; site < ext.rows(); ++site)
    for (std::size_t r = 0; r < rows; ++r) {
      const Real* arow = a + r * lda;
      Real acc = 0;
      const Real* bp = panels.row(site);
      for (const ColSpan& sp : ext.row(site)) {
        for (std::size_t c = sp.begin; c < sp.end; ++c) acc += arow[c] * *bp++;
      }
      out(site - row_begin, r) = acc;
    }
}

void rank1_add_rows(Real* a, std::size_t lda,
                    std::span<const std::uint32_t> row_ids,
                    std::size_t col_begin, const Real* vals, std::size_t len) {
  for (const std::uint32_t r : row_ids) {
    Real* row = a + std::size_t(r) * lda + col_begin;
    for (std::size_t t = 0; t < len; ++t) row[t] += vals[t];
  }
}

void accumulate_masked_cols(Real* dst, std::uint64_t mask,
                            const Real* const* cols, std::size_t len) {
  for (unsigned b = 0; b < 64; ++b) {
    if (!(mask & (std::uint64_t(1) << b))) continue;
    const Real* src = cols[b];
    for (std::size_t t = 0; t < len; ++t) dst[t] += src[t];
  }
}

Real bernoulli_log_likelihood(std::span<const Real> x, const Real* p,
                              Real eps) {
  Real acc = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const Real sel = x[i] != 0 ? p[i] : 1 - p[i];
    acc += std::log(sel < eps ? eps : sel);
  }
  return acc;
}

void sigmoid_inplace(Matrix& a) {
  Real* p = a.data();
  const std::size_t total = a.size();
  for (std::size_t i = 0; i < total; ++i) p[i] = sigmoid(p[i]);
}

}  // namespace vqmc::ref
