// AVX2+FMA instantiation; compiled with -mavx2 -mfma (see
// src/tensor/CMakeLists.txt) and only dispatched to after a runtime CPU
// check, so the TU may freely use 256-bit intrinsics.
#define VQMC_ARCH_NS arch_avx2
#include "tensor/kernels_arch.inc"
