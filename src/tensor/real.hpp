#pragma once

/// \file real.hpp
/// \brief Scalar type used throughout the library.
///
/// The paper trains in single precision on GPUs; we use double on CPU so the
/// stochastic-reconfiguration CG solve and exact-diagonalization validation
/// are not limited by round-off.  All code is written against `Real` so a
/// float build is a one-line change.

#include <cstddef>

namespace vqmc {

using Real = double;

/// Index type for tensor extents (signed, per C++ Core Guidelines ES.107
/// pragmatism we keep std::size_t at container boundaries and use Index in
/// arithmetic-heavy loops).
using Index = std::ptrdiff_t;

}  // namespace vqmc
