#pragma once

/// \file kernels_ref.hpp
/// \brief Scalar reference kernels (namespace vqmc::ref).
///
/// These are the PR 5 scalar loops, kept verbatim: one running accumulator
/// per output element, no blocking, no vector math.  They define the
/// ground truth for the SIMD parity tests and the historical baseline the
/// benchmarks measure speedups against — the dispatched kernels in
/// kernels.hpp must agree with them within the documented ULP bound
/// (tolerance contract, see kernels.hpp), and `ref::bernoulli_log_likelihood`
/// / `ref::sigmoid_inplace` reproduce the pre-SIMD `Made` transcendental
/// loops bit-for-bit.
///
/// Not OpenMP-parallel and not performance-tuned on purpose: a reference
/// you can read is a reference you can trust.

#include <span>

#include "tensor/kernels.hpp"

namespace vqmc::ref {

Real dot(std::span<const Real> x, std::span<const Real> y);
void gemv(const Matrix& a, std::span<const Real> x, std::span<Real> y);
void gemv_t(const Matrix& a, std::span<const Real> x, std::span<Real> y);
void gemm_nn(const Matrix& a, const Matrix& b, Matrix& c);
void gemm_nt(const Matrix& a, const Matrix& b, Matrix& c);
void gemm_tn_accumulate(const Matrix& a, const Matrix& b, Matrix& c);
void gemv_extents(const Matrix& a, RowExtentsView ext, std::span<const Real> x,
                  std::span<Real> y);
void gemm_nt_extents(const Matrix& a, const Matrix& b, RowExtentsView ext,
                     Matrix& c);
void gemm_nn_extents(const Matrix& a, const Matrix& b, RowExtentsView ext,
                     Matrix& c);
void gemm_tn_accumulate_extents(const Matrix& a, const Matrix& b,
                                RowExtentsView ext, Matrix& c);
Real relu_dot_panels(std::span<const ColSpan> spans, const Real* a,
                     const Real* packed_row);
void relu_dot_panels_batch(std::span<const ColSpan> spans, const Real* a,
                           std::size_t lda, std::size_t rows,
                           const Real* packed_row, Real* out);
void relu_dot_panels_block(RowExtentsView ext, const PackedRowPanels& panels,
                           std::size_t row_begin, const Real* a,
                           std::size_t lda, std::size_t rows, Matrix& out);
void dot_panels_block(RowExtentsView ext, const PackedRowPanels& panels,
                      std::size_t row_begin, const Real* a, std::size_t lda,
                      std::size_t rows, Matrix& out);
void rank1_add_rows(Real* a, std::size_t lda,
                    std::span<const std::uint32_t> row_ids,
                    std::size_t col_begin, const Real* vals, std::size_t len);
void accumulate_masked_cols(Real* dst, std::uint64_t mask,
                            const Real* const* cols, std::size_t len);
Real bernoulli_log_likelihood(std::span<const Real> x, const Real* p,
                              Real eps);
void sigmoid_inplace(Matrix& a);

}  // namespace vqmc::ref
