#include "baselines/goemans_williamson.hpp"

#include "common/error.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"

namespace vqmc::baselines {

CutResult round_hyperplane(const Graph& graph, const Matrix& v,
                           std::uint64_t seed) {
  const std::size_t n = graph.num_vertices();
  const std::size_t p = v.cols();
  VQMC_REQUIRE(v.rows() == n, "GW rounding: factor has wrong row count");
  rng::Xoshiro256 gen(seed ^ 0x4757ULL);
  std::vector<Real> r(p);
  for (std::size_t c = 0; c < p; ++c) r[c] = rng::normal(gen);

  CutResult result;
  result.partition = Vector(n);
  for (std::size_t i = 0; i < n; ++i) {
    Real inner = 0;
    for (std::size_t c = 0; c < p; ++c) inner += v(i, c) * r[c];
    result.partition[i] = inner >= 0 ? 1 : 0;
  }
  result.cut = graph.cut_value(result.partition.span());
  return result;
}

CutResult best_hyperplane_rounding(const Graph& graph, const Matrix& v,
                                   std::size_t trials, std::uint64_t seed) {
  VQMC_REQUIRE(trials >= 1, "GW rounding: need at least one trial");
  CutResult best;
  for (std::size_t t = 0; t < trials; ++t) {
    CutResult r = round_hyperplane(graph, v, seed + t * 0x9e3779b9ULL);
    if (t == 0 || r.cut > best.cut) best = std::move(r);
  }
  return best;
}

GoemansWilliamsonResult goemans_williamson(
    const Graph& graph, const GoemansWilliamsonOptions& options) {
  BurerMonteiroOptions sdp = options.sdp;
  sdp.seed = options.seed;
  const BurerMonteiroResult factor = solve_maxcut_sdp(graph, sdp);
  GoemansWilliamsonResult out;
  out.sdp_objective = factor.sdp_objective;
  out.best = best_hyperplane_rounding(graph, factor.v,
                                      options.rounding_trials, options.seed);
  return out;
}

}  // namespace vqmc::baselines
