#include "baselines/local_search.hpp"

#include <limits>
#include <vector>

#include "baselines/goemans_williamson.hpp"
#include "common/error.hpp"

namespace vqmc::baselines {

Real local_search_1swap(const Graph& graph, Vector& partition,
                        std::size_t max_moves) {
  const std::size_t n = graph.num_vertices();
  VQMC_REQUIRE(partition.size() == n, "local search: partition size mismatch");

  // gain[i] = cut increase from flipping vertex i =
  //   sum_{j ~ i} w_ij * (same side ? +1 : -1).
  std::vector<Real> gain(n, 0);
  auto side = [&](std::size_t v) { return partition[v] > Real(0.5); };
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& [j, w] : graph.neighbors(i))
      gain[i] += side(i) == side(j) ? w : -w;
  }

  Real cut = graph.cut_value(partition.span());
  std::size_t moves = 0;
  while (max_moves == 0 || moves < max_moves) {
    std::size_t best = n;
    Real best_gain = Real(1e-12);  // strictly-positive improvement only
    for (std::size_t i = 0; i < n; ++i) {
      if (gain[i] > best_gain) {
        best_gain = gain[i];
        best = i;
      }
    }
    if (best == n) break;

    // Flip `best` and update gains incrementally.
    partition[best] = 1 - partition[best];
    cut += best_gain;
    gain[best] = -gain[best];
    for (const auto& [j, w] : graph.neighbors(best))
      gain[j] += side(best) == side(j) ? 2 * w : -2 * w;
    ++moves;
  }
  return cut;
}

CutResult burer_monteiro_cut(const Graph& graph,
                             const BurerMonteiroCutOptions& options) {
  BurerMonteiroOptions sdp = options.sdp;
  sdp.seed = options.seed;
  const BurerMonteiroResult factor = solve_maxcut_sdp(graph, sdp);
  CutResult best = best_hyperplane_rounding(
      graph, factor.v, options.rounding_trials, options.seed);
  if (options.polish) {
    best.cut = local_search_1swap(graph, best.partition);
  }
  return best;
}

}  // namespace vqmc::baselines
