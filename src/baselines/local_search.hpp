#pragma once

/// \file local_search.hpp
/// \brief Greedy 1-swap local search for Max-Cut.
///
/// Repeatedly moves the vertex with the largest cut gain to the other side
/// until no single move improves.  Used to post-process rounded SDP
/// solutions in the Burer–Monteiro baseline row (matching the quality of
/// Manopt's trust-region pipeline in Table 2) and available to users as a
/// cheap polish step for VQMC cuts.

#include "baselines/burer_monteiro.hpp"
#include "baselines/random_cut.hpp"
#include "hamiltonian/graph.hpp"

namespace vqmc::baselines {

/// Improve `partition` in place; returns the final cut value.
Real local_search_1swap(const Graph& graph, Vector& partition,
                        std::size_t max_moves = 0 /* 0 = unlimited */);

struct BurerMonteiroCutOptions {
  BurerMonteiroOptions sdp;
  std::size_t rounding_trials = 100;
  bool polish = true;  ///< run 1-swap local search on the best rounding
  std::uint64_t seed = 0;
};

/// The "Burer–Monteiro" baseline row of Table 2: SDP solve, many roundings,
/// greedy polish.
CutResult burer_monteiro_cut(const Graph& graph,
                             const BurerMonteiroCutOptions& options = {});

}  // namespace vqmc::baselines
