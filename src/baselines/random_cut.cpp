#include "baselines/random_cut.hpp"

#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"

namespace vqmc::baselines {

CutResult random_cut(const Graph& graph, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  const std::size_t n = graph.num_vertices();
  CutResult result;
  result.partition = Vector(n);
  for (std::size_t i = 0; i < n; ++i)
    result.partition[i] = rng::bernoulli(gen, 0.5) ? 1 : 0;
  result.cut = graph.cut_value(result.partition.span());
  return result;
}

CutResult best_random_cut(const Graph& graph, std::size_t trials,
                          std::uint64_t seed) {
  CutResult best;
  for (std::size_t t = 0; t < trials; ++t) {
    CutResult r = random_cut(graph, seed + t);
    if (t == 0 || r.cut > best.cut) best = std::move(r);
  }
  return best;
}

}  // namespace vqmc::baselines
