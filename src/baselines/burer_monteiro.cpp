#include "baselines/burer_monteiro.hpp"

#include <cmath>

#include "common/error.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"

namespace vqmc::baselines {

namespace {

Real sdp_objective(const Graph& graph, const Matrix& v) {
  const std::size_t p = v.cols();
  Real acc = 0;
  for (const Graph::Edge& e : graph.edges()) {
    Real inner = 0;
    for (std::size_t c = 0; c < p; ++c) inner += v(e.u, c) * v(e.v, c);
    acc += e.weight * (1 - inner) / 2;
  }
  return acc;
}

}  // namespace

BurerMonteiroResult solve_maxcut_sdp(const Graph& graph,
                                     const BurerMonteiroOptions& options) {
  const std::size_t n = graph.num_vertices();
  VQMC_REQUIRE(n >= 2, "BM: need at least 2 vertices");
  std::size_t p = options.rank;
  if (p == 0) p = std::size_t(std::ceil(std::sqrt(2.0 * double(n)))) + 1;
  p = std::min(p, n);

  rng::Xoshiro256 gen(options.seed ^ 0x424dULL);
  BurerMonteiroResult result;
  result.v = Matrix(n, p);
  for (std::size_t i = 0; i < n; ++i) {
    Real norm2 = 0;
    for (std::size_t c = 0; c < p; ++c) {
      result.v(i, c) = rng::normal(gen);
      norm2 += result.v(i, c) * result.v(i, c);
    }
    const Real inv = 1 / std::sqrt(norm2);
    for (std::size_t c = 0; c < p; ++c) result.v(i, c) *= inv;
  }

  std::vector<Real> g(p);
  Real previous = sdp_objective(graph, result.v);
  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    result.sweeps = sweep + 1;
    for (std::size_t i = 0; i < n; ++i) {
      // g = sum_j w_ij v_j; the exact minimizer of the objective in v_i
      // (holding the rest fixed) is v_i = -g / ||g||.
      for (std::size_t c = 0; c < p; ++c) g[c] = 0;
      for (const auto& [j, w] : graph.neighbors(i))
        for (std::size_t c = 0; c < p; ++c) g[c] += w * result.v(j, c);
      Real norm2 = 0;
      for (std::size_t c = 0; c < p; ++c) norm2 += g[c] * g[c];
      if (norm2 <= Real(1e-30)) continue;  // isolated vertex: leave as-is
      const Real inv = -1 / std::sqrt(norm2);
      for (std::size_t c = 0; c < p; ++c) result.v(i, c) = inv * g[c];
    }
    const Real current = sdp_objective(graph, result.v);
    const Real denom = std::max<Real>(1, std::fabs(current));
    if (std::fabs(current - previous) / denom <= options.tolerance) {
      result.converged = true;
      result.sdp_objective = current;
      return result;
    }
    previous = current;
  }
  result.sdp_objective = previous;
  return result;
}

}  // namespace vqmc::baselines
