#pragma once

/// \file random_cut.hpp
/// \brief The 0.5-approximation Random Cut baseline (Table 2, row 1): assign
/// every vertex to a side with probability 1/2.

#include <cstdint>

#include "hamiltonian/graph.hpp"
#include "tensor/vector.hpp"

namespace vqmc::baselines {

struct CutResult {
  Real cut = 0;
  Vector partition;  ///< {0,1}^n side assignment achieving `cut`
};

/// One uniformly random bipartition.
CutResult random_cut(const Graph& graph, std::uint64_t seed);

/// Best of `trials` random bipartitions.
CutResult best_random_cut(const Graph& graph, std::size_t trials,
                          std::uint64_t seed);

}  // namespace vqmc::baselines
