#pragma once

/// \file burer_monteiro.hpp
/// \brief Low-rank Burer–Monteiro factorization of the Max-Cut SDP.
///
/// The Max-Cut SDP relaxation is
///
///   max sum_{(i,j) in E} w_ij (1 - X_ij) / 2   s.t.  X >= 0, X_ii = 1.
///
/// Burer–Monteiro substitutes X = V V^T with V in R^{n x p}, turning the
/// constraint set into a product of unit spheres.  For p >= ceil(sqrt(2n))
/// every second-order critical point is a global optimum (Boumal et al.),
/// which is the correctness basis for using a local method here in place of
/// the paper's CVXPY / Manopt solvers (see DESIGN.md substitutions).
///
/// The solver is the *mixing method* (Wang & Kolter 2017): cyclic block
/// updates v_i <- -normalize(sum_j w_ij v_j), each of which exactly
/// minimizes the objective in v_i.  It converges linearly to the SDP
/// optimum in practice and needs no step-size tuning.

#include <cstdint>

#include "hamiltonian/graph.hpp"
#include "tensor/matrix.hpp"

namespace vqmc::baselines {

struct BurerMonteiroOptions {
  std::size_t rank = 0;       ///< 0 = ceil(sqrt(2n)) + 1
  int max_sweeps = 300;       ///< cyclic passes over all vertices
  Real tolerance = 1e-7;      ///< on the relative objective change per sweep
  std::uint64_t seed = 0;
};

struct BurerMonteiroResult {
  Matrix v;                ///< n x p factor, unit rows
  Real sdp_objective = 0;  ///< sum w_ij (1 - <v_i, v_j>) / 2 (upper bounds max cut)
  int sweeps = 0;
  bool converged = false;
};

/// Solve the Max-Cut SDP by low-rank factorization.
BurerMonteiroResult solve_maxcut_sdp(const Graph& graph,
                                     const BurerMonteiroOptions& options = {});

}  // namespace vqmc::baselines
