#pragma once

/// \file goemans_williamson.hpp
/// \brief Goemans–Williamson hyperplane rounding and the full GW pipeline
/// (0.878-approximation for Max-Cut).
///
/// Rounding: draw r ~ N(0, I_p) and set x_i = [<v_i, r> >= 0].  The GW
/// pipeline solves the SDP (via the Burer–Monteiro factorization) and takes
/// the best cut over `rounding_trials` hyperplanes — exactly what the
/// paper's CVXPY-based row of Table 2 computes.

#include <cstdint>

#include "baselines/burer_monteiro.hpp"
#include "baselines/random_cut.hpp"

namespace vqmc::baselines {

/// One hyperplane rounding of an SDP factor V (n x p).
CutResult round_hyperplane(const Graph& graph, const Matrix& v,
                           std::uint64_t seed);

/// Best of `trials` hyperplane roundings.
CutResult best_hyperplane_rounding(const Graph& graph, const Matrix& v,
                                   std::size_t trials, std::uint64_t seed);

struct GoemansWilliamsonOptions {
  BurerMonteiroOptions sdp;
  std::size_t rounding_trials = 100;
  std::uint64_t seed = 0;
};

struct GoemansWilliamsonResult {
  CutResult best;
  Real sdp_objective = 0;  ///< SDP upper bound on the max cut
};

/// Full GW pipeline: SDP solve + repeated hyperplane rounding.
GoemansWilliamsonResult goemans_williamson(
    const Graph& graph, const GoemansWilliamsonOptions& options = {});

}  // namespace vqmc::baselines
