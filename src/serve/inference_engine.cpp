#include "serve/inference_engine.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "core/local_energy.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/tracer.hpp"

namespace vqmc::serve {

namespace {

/// The batching window is consumed in slices of max_wait_us / kWindowSlices
/// so the adaptive close (see worker_loop) can detect a stalled window
/// without turning every lone request into its own batch: open-loop bursts
/// arriving within a slice still coalesce, while a closed-loop stall costs
/// at most one slice of idle wait instead of the whole window.
constexpr std::size_t kWindowSlices = 8;

const char* kind_name(int kind) {
  switch (kind) {
    case 0:
      return "sample";
    case 1:
      return "log_psi";
    default:
      return "local_energy";
  }
}

/// Labeled lane-latency family names, built once (the label body lives
/// inside the registry name; the obs renderer splits it back out).
const std::string& lane_latency_metric(Priority priority) {
  static const std::string interactive = telemetry::labeled_name(
      "serve.lane.latency_seconds", {{"lane", "interactive"}});
  static const std::string batch = telemetry::labeled_name(
      "serve.lane.latency_seconds", {{"lane", "batch"}});
  return priority == Priority::kInteractive ? interactive : batch;
}

void raise_max(std::atomic<std::uint64_t>& slot, std::uint64_t value) {
  std::uint64_t seen = slot.load(std::memory_order_relaxed);
  while (seen < value && !slot.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

InferenceEngine::InferenceEngine(ServeConfig config)
    : config_(std::move(config)),
      scheduler_(SchedulerConfig{config_.interactive_weight,
                                 config_.batch_weight,
                                 config_.tenant_quotas}) {
  VQMC_REQUIRE(config_.workers >= 1, "serve: need at least one worker");
  VQMC_REQUIRE(config_.max_batch_rows >= 1,
               "serve: micro-batch budget must be positive");
  VQMC_REQUIRE(config_.max_pending_rows >= config_.max_batch_rows,
               "serve: admission bound below the micro-batch budget");
  VQMC_REQUIRE(config_.max_wait_us >= 0, "serve: negative batching window");
  VQMC_REQUIRE(!config_.default_model.empty(),
               "serve: default model name must not be empty");
  VQMC_REQUIRE(!config_.default_tenant.empty(),
               "serve: default tenant id must not be empty");
  workers_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

InferenceEngine::~InferenceEngine() { shutdown(); }

InferenceEngine::ModelState& InferenceEngine::ensure_model_state(
    const std::string& name) {
  VQMC_REQUIRE(!name.empty(), "serve: model name must not be empty");
  std::lock_guard<std::mutex> lock(registry_mutex_);
  std::unique_ptr<ModelState>& slot = model_states_[name];
  if (slot == nullptr) {
    slot = std::make_unique<ModelState>(fleet_.ensure(name));
    slot->batch_rows_metric =
        telemetry::labeled_name("serve.model.batch_rows", {{"model", name}});
  }
  return *slot;
}

InferenceEngine::TenantState& InferenceEngine::ensure_tenant_state(
    const std::string& name) {
  VQMC_REQUIRE(!name.empty(), "serve: tenant id must not be empty");
  std::lock_guard<std::mutex> lock(registry_mutex_);
  std::unique_ptr<TenantState>& slot = tenant_states_[name];
  if (slot == nullptr) {
    slot = std::make_unique<TenantState>();
    slot->latency_metric = telemetry::labeled_name(
        "serve.tenant.latency_seconds", {{"tenant", name}});
  }
  return *slot;
}

std::uint64_t InferenceEngine::publish(
    const std::string& model_name,
    std::shared_ptr<const ModelSnapshot> snapshot) {
  ModelState& state = ensure_model_state(model_name);
  const std::uint64_t version = state.chain->publish(std::move(snapshot));
  publishes_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry::enabled()) {
    telemetry::metrics().counter("serve.publishes").add();
  }
  return version;
}

std::uint64_t InferenceEngine::publish(
    std::shared_ptr<const ModelSnapshot> snapshot) {
  return publish(config_.default_model, std::move(snapshot));
}

std::uint64_t InferenceEngine::publish_model(const std::string& model_name,
                                             const Made& model) {
  return publish(model_name, ModelSnapshot::from_model(model));
}

std::uint64_t InferenceEngine::publish_model(const Made& model) {
  return publish_model(config_.default_model, model);
}

std::uint64_t InferenceEngine::publish_checkpoint(
    const std::string& model_name, const TrainingSnapshot& snapshot) {
  return publish(model_name, ModelSnapshot::from_training_snapshot(snapshot));
}

std::uint64_t InferenceEngine::publish_checkpoint(
    const TrainingSnapshot& snapshot) {
  return publish_checkpoint(config_.default_model, snapshot);
}

std::shared_ptr<const ModelSnapshot> InferenceEngine::current_snapshot(
    const std::string& model_name) const {
  const FleetModel* model = fleet_.find(model_name);
  if (model == nullptr) return nullptr;
  const auto published = model->current();
  return published == nullptr ? nullptr : published->snapshot;
}

std::shared_ptr<const ModelSnapshot> InferenceEngine::current_snapshot()
    const {
  return current_snapshot(config_.default_model);
}

std::uint64_t InferenceEngine::current_version(
    const std::string& model_name) const {
  const FleetModel* model = fleet_.find(model_name);
  return model == nullptr ? 0 : model->current_version();
}

std::uint64_t InferenceEngine::current_version() const {
  return current_version(config_.default_model);
}

std::vector<std::string> InferenceEngine::model_names() const {
  return fleet_.names();
}

std::future<SampleResult> InferenceEngine::submit_sample(
    std::size_t count, std::uint64_t seed, const RequestOptions& options) {
  VQMC_REQUIRE(count > 0, "serve: sample count must be positive");
  auto request = std::make_unique<Request>();
  request->request_kind = Kind::Sample;
  request->rows = count;
  request->seed = seed;
  return enqueue_sample(std::move(request), options);
}

std::future<SampleResult> InferenceEngine::submit_sample(std::size_t count,
                                                         std::uint64_t seed,
                                                         double timeout_us) {
  RequestOptions options;
  options.timeout_us = timeout_us;
  return submit_sample(count, seed, options);
}

std::future<EvalResult> InferenceEngine::submit_log_psi(
    Matrix configs, const RequestOptions& options) {
  auto request = std::make_unique<Request>();
  request->request_kind = Kind::LogPsi;
  request->rows = configs.rows();
  request->configs = std::move(configs);
  return enqueue_eval(std::move(request), options);
}

std::future<EvalResult> InferenceEngine::submit_log_psi(Matrix configs,
                                                        double timeout_us) {
  RequestOptions options;
  options.timeout_us = timeout_us;
  return submit_log_psi(std::move(configs), options);
}

std::future<EvalResult> InferenceEngine::submit_local_energy(
    Matrix configs, const RequestOptions& options) {
  VQMC_REQUIRE(config_.hamiltonian != nullptr,
               "serve: engine was configured without a Hamiltonian; "
               "local-energy requests are unavailable");
  auto request = std::make_unique<Request>();
  request->request_kind = Kind::LocalEnergy;
  request->rows = configs.rows();
  request->configs = std::move(configs);
  return enqueue_eval(std::move(request), options);
}

std::future<EvalResult> InferenceEngine::submit_local_energy(
    Matrix configs, double timeout_us) {
  RequestOptions options;
  options.timeout_us = timeout_us;
  return submit_local_energy(std::move(configs), options);
}

std::future<SampleResult> InferenceEngine::enqueue_sample(
    std::unique_ptr<Request> request, const RequestOptions& options) {
  std::future<SampleResult> future = request->sample_promise.get_future();
  admit(std::move(request), options);
  return future;
}

std::future<EvalResult> InferenceEngine::enqueue_eval(
    std::unique_ptr<Request> request, const RequestOptions& options) {
  std::future<EvalResult> future = request->eval_promise.get_future();
  admit(std::move(request), options);
  return future;
}

void InferenceEngine::admit(std::unique_ptr<Request> request,
                            const RequestOptions& options) {
  const std::string& model_name =
      options.model.empty() ? config_.default_model : options.model;
  const std::string& tenant =
      options.tenant.empty() ? config_.default_tenant : options.tenant;
  VQMC_REQUIRE(request->rows > 0, "serve: empty request");
  VQMC_REQUIRE(options.timeout_us >= 0, "serve: negative request timeout");

  ModelState& model_state = ensure_model_state(model_name);
  TenantState& tenant_state = ensure_tenant_state(tenant);
  const auto published = model_state.chain->current();
  VQMC_REQUIRE(published != nullptr,
               "serve: model '" + model_name +
                   "' has no published snapshot; publish one first");
  if (request->request_kind != Kind::Sample) {
    VQMC_REQUIRE(
        request->configs.cols() == published->snapshot->num_spins(),
        "serve: request configurations have the wrong spin count for "
        "model '" +
            model_name + "'");
  }
  request->model = &model_state;
  request->kind = int(request->request_kind);
  request->priority = options.priority;
  request->model_state = &model_state;
  request->tenant_state = &tenant_state;

  const std::size_t rows = request->rows;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw ServeShutdownError("serve: engine is shut down");
    }
    // Overload is checked before the quota: a shed request must not burn
    // tenant tokens (the engine, not the tenant, lacked capacity).
    if (pending_rows_ + rows > config_.max_pending_rows) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      tenant_state.shed.fetch_add(1, std::memory_order_relaxed);
      if (telemetry::enabled()) {
        telemetry::metrics().counter("serve.shed").add();
      }
      throw ServeOverloadError(
          "serve: overloaded — request of " + std::to_string(rows) +
          " rows from tenant '" + tenant + "' rejected: " +
          std::to_string(pending_rows_) +
          " rows outstanding against the max_pending_rows limit of " +
          std::to_string(config_.max_pending_rows));
    }
    const double now_us = telemetry::now_us();
    const QuotaDecision decision = scheduler_.try_admit(tenant, rows, now_us);
    if (!decision.admitted) {
      quota_rejected_.fetch_add(1, std::memory_order_relaxed);
      tenant_state.quota_rejected.fetch_add(1, std::memory_order_relaxed);
      if (telemetry::enabled()) {
        telemetry::metrics().counter("serve.quota_rejected").add();
      }
      throw ServeQuotaError(
          "serve: quota exhausted for tenant '" + tenant + "' — request of " +
          std::to_string(rows) + " rows, " +
          std::to_string(decision.available_rows) +
          " rows available (rate " +
          std::to_string(decision.quota->rows_per_second) +
          " rows/s, burst " + std::to_string(decision.quota->burst_rows) +
          " rows); no tokens were consumed");
    }
    request->enqueue_us = now_us;
    if (options.timeout_us > 0) {
      request->deadline_us = now_us + options.timeout_us;
    }
    scheduler_.enqueue(std::move(request));
    pending_rows_ += rows;
    submitted_.fetch_add(1, std::memory_order_relaxed);
    model_state.submitted.fetch_add(1, std::memory_order_relaxed);
    tenant_state.submitted.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::enabled()) {
      telemetry::MetricsRegistry& registry = telemetry::metrics();
      registry.counter("serve.requests").add();
      registry.gauge("serve.queue_rows").set(double(scheduler_.queued_rows()));
    }
  }
  work_cv_.notify_one();
}

void InferenceEngine::worker_loop() {
  // Per-worker model workspace and batch scratch: activation and batch
  // buffers stop allocating once batch shapes stabilize, and stay private
  // to this thread.
  Made::Workspace ws;
  BatchScratch scratch;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [this] {
      return stopping_ || (!scheduler_.empty() && !paused_);
    });
    if (scheduler_.empty() || (paused_ && !stopping_)) {
      if (stopping_) return;
      continue;
    }

    BatchPlan plan = scheduler_.open_batch(config_.max_batch_rows);
    if (plan.empty()) continue;

    // The window is anchored at the oldest member's arrival and clamped by
    // the batch's earliest deadline — the engine never idles a near-deadline
    // request past its budget just to coalesce more traffic.  grow_batch can
    // pull in an earlier deadline, so the bound is recomputed every slice.
    const auto window_end_us = [&] {
      return std::min(plan.oldest_enqueue_us + config_.max_wait_us,
                      plan.earliest_deadline_us);
    };

    // Hold the batch open for late co-batchable arrivals until the window
    // closes or the row budget fills.  Shutdown collapses the window so the
    // backlog drains promptly.  The wait is sliced: a slice that elapses
    // with no growth while every outstanding row is already in this batch
    // means every producer is blocked on this very dispatch (closed-loop
    // traffic), so the rest of the window cannot fill and is forfeited.
    // Waiting the window out regardless used to cap the coalescing gain
    // below 1 at max_batch_rows=128 / max_wait_us=4000 in the serve bench.
    const double slice_us = config_.max_wait_us / double(kWindowSlices);
    while (!stopping_ && plan.rows < config_.max_batch_rows) {
      const double now = telemetry::now_us();
      if (now >= window_end_us()) break;
      const std::size_t rows_before = plan.rows;
      work_cv_.wait_for(lock,
                        std::chrono::duration<double, std::micro>(
                            std::min(slice_us, window_end_us() - now)));
      scheduler_.grow_batch(plan, config_.max_batch_rows);
      if (plan.rows == rows_before && pending_rows_ == plan.rows) break;
    }

    if (telemetry::enabled()) {
      telemetry::metrics().gauge("serve.queue_rows")
          .set(double(scheduler_.queued_rows()));
    }
    lock.unlock();
    // Record the high-water batch occupancy, engine-wide and per model (the
    // saturation tests pin that a backed-up queue fills max_batch_rows-row
    // batches).
    raise_max(max_batch_rows_, plan.rows);
    raise_max(static_cast<Request&>(*plan.requests.front())
                  .model_state->max_batch_rows,
              plan.rows);
    const std::size_t rows = plan.rows;
    execute_batch(plan, ws, scratch);
    finish_rows(rows);
    lock.lock();
  }
}

void InferenceEngine::finish_rows(std::size_t rows) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_rows_ -= rows;
  }
  drain_cv_.notify_all();
}

void InferenceEngine::fail_request(Request& request,
                                   std::exception_ptr error) {
  // Count before fulfilling (see execute_batch): a client unblocked by the
  // future must already see itself in counters().failed.
  failed_.fetch_add(1, std::memory_order_relaxed);
  request.model_state->failed.fetch_add(1, std::memory_order_relaxed);
  request.tenant_state->failed.fetch_add(1, std::memory_order_relaxed);
  if (request.request_kind == Kind::Sample) {
    request.sample_promise.set_exception(error);
  } else {
    request.eval_promise.set_exception(error);
  }
}

void InferenceEngine::execute_batch(BatchPlan& plan, Made::Workspace& ws,
                                    BatchScratch& scratch) {
  TELEMETRY_SPAN("serve.batch");
  // The scheduler guarantees a single-model, single-kind batch; bind it to
  // exactly one published version of that model — every response below is
  // attributable to this snapshot and no other.
  Request& first = static_cast<Request&>(*plan.requests.front());
  ModelState& model_state = *first.model_state;
  const Kind kind = first.request_kind;
  const auto published = model_state.chain->current();
  const std::uint64_t version = published->version;
  const ModelSnapshot& snapshot = *published->snapshot;
  const double start_us = telemetry::now_us();

  // Expired requests are failed (reported!) up front and excluded from the
  // compute batch — a deadline miss never costs wasted kernel work.
  std::vector<Request*> live;
  live.reserve(plan.requests.size());
  std::size_t live_rows = 0;
  for (auto& queued : plan.requests) {
    Request* request = static_cast<Request*>(queued.get());
    if (request->deadline_us < start_us) {
      fail_request(*request,
                   std::make_exception_ptr(ServeDeadlineError(
                       "serve: deadline expired before dispatch (model '" +
                       model_state.chain->name() + "')")));
      if (telemetry::enabled()) {
        telemetry::metrics().counter("serve.deadline_expired").add();
      }
    } else {
      live.push_back(request);
      live_rows += request->rows;
    }
  }
  batches_.fetch_add(1, std::memory_order_relaxed);
  model_state.batches.fetch_add(1, std::memory_order_relaxed);
  if (telemetry::enabled()) {
    telemetry::MetricsRegistry& registry = telemetry::metrics();
    registry.counter("serve.batches").add();
    registry.counter(std::string("serve.batches.") + kind_name(int(kind)))
        .add();
    registry.histogram("serve.batch_rows").observe(double(plan.rows));
    registry.histogram(model_state.batch_rows_metric)
        .observe(double(plan.rows));
  }
  if (live.empty()) return;

  const auto complete = [this](Request& request, double end_us) {
    // Count before fulfilling: a client unblocked by the future must
    // already see itself in counters().completed.
    completed_.fetch_add(1, std::memory_order_relaxed);
    request.model_state->completed.fetch_add(1, std::memory_order_relaxed);
    request.tenant_state->completed.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::enabled()) {
      telemetry::MetricsRegistry& registry = telemetry::metrics();
      const double latency_s = (end_us - request.enqueue_us) * 1e-6;
      registry.counter("serve.responses").add();
      registry.histogram("serve.latency_seconds").observe(latency_s);
      registry.histogram(lane_latency_metric(request.priority))
          .observe(latency_s);
      registry.histogram(request.tenant_state->latency_metric)
          .observe(latency_s);
    }
  };

  try {
    const std::size_t n = snapshot.num_spins();
    if (kind == Kind::Sample) {
      // One ancestral pass over the sites serves every request; each
      // request's rows consume its own seed stream (bit-identical to a
      // dedicated FastMadeSampler).
      ensure_shape(scratch.sample_out, live_rows, n);
      Matrix& out = scratch.sample_out;
      scratch.gens.clear();
      scratch.gens.reserve(live.size());
      for (const Request* request : live) scratch.gens.emplace_back(request->seed);
      scratch.slices.resize(live.size());
      std::size_t row = 0;
      for (std::size_t r = 0; r < live.size(); ++r) {
        scratch.slices[r] = {row, live[r]->rows, &scratch.gens[r]};
        row += live[r]->rows;
      }
      const std::uint64_t nonfinite = snapshot.sample(out, scratch.slices, ws);
      nonfinite_draws_.fetch_add(nonfinite, std::memory_order_relaxed);
      if (telemetry::enabled()) {
        // Created unconditionally (add(0) registers the instrument) so the
        // health guards can attribute sick batches to the model, not the
        // engine.
        telemetry::metrics().counter("serve.nonfinite_draws").add(nonfinite);
      }
      const double end_us = telemetry::now_us();
      row = 0;
      for (Request*& request : live) {
        SampleResult result;
        result.samples = Matrix(request->rows, n);
        std::copy_n(out.data() + row * n, request->rows * n,
                    result.samples.data());
        result.model_version = version;
        row += request->rows;
        complete(*request, end_us);
        request->sample_promise.set_value(std::move(result));
        request = nullptr;  // fulfilled; the catch below must skip it
      }
    } else {
      // Stack the request configurations into one forward batch.
      ensure_shape(scratch.stacked, live_rows, n);
      Matrix& all = scratch.stacked;
      std::size_t row = 0;
      for (const Request* request : live) {
        std::copy_n(request->configs.data(), request->rows * n,
                    all.data() + row * n);
        row += request->rows;
      }
      scratch.values.resize(live_rows);
      std::vector<Real>& values = scratch.values;
      if (kind == Kind::LogPsi) {
        snapshot.log_psi(all, values, ws);
      } else {
        LocalEnergyEngine engine(*config_.hamiltonian, snapshot.model());
        engine.compute(all, values);
      }
      const double end_us = telemetry::now_us();
      row = 0;
      for (Request*& request : live) {
        EvalResult result;
        result.values.assign(values.begin() + std::ptrdiff_t(row),
                             values.begin() +
                                 std::ptrdiff_t(row + request->rows));
        result.model_version = version;
        row += request->rows;
        complete(*request, end_us);
        request->eval_promise.set_value(std::move(result));
        request = nullptr;  // fulfilled; the catch below must skip it
      }
    }
  } catch (...) {
    // A kernel-level failure fails every not-yet-fulfilled request in the
    // batch — each future observes the error, so nothing is dropped
    // unreported.
    const std::exception_ptr error = std::current_exception();
    for (Request* request : live) {
      if (request != nullptr) fail_request(*request, error);
    }
  }
}

void InferenceEngine::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drain_cv_.wait(lock, [this] { return pending_rows_ == 0; });
}

void InferenceEngine::pause() {
  std::lock_guard<std::mutex> lock(mutex_);
  paused_ = true;
}

void InferenceEngine::resume() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

void InferenceEngine::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      // Idempotent: a second shutdown only needs the joins below to have
      // happened, which the first call guarantees.
      return;
    }
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

EngineCounters InferenceEngine::counters() const {
  EngineCounters counters;
  counters.submitted = submitted_.load(std::memory_order_relaxed);
  counters.completed = completed_.load(std::memory_order_relaxed);
  counters.failed = failed_.load(std::memory_order_relaxed);
  counters.shed = shed_.load(std::memory_order_relaxed);
  counters.quota_rejected = quota_rejected_.load(std::memory_order_relaxed);
  counters.batches = batches_.load(std::memory_order_relaxed);
  counters.publishes = publishes_.load(std::memory_order_relaxed);
  counters.max_batch_rows = max_batch_rows_.load(std::memory_order_relaxed);
  counters.nonfinite_draws = nonfinite_draws_.load(std::memory_order_relaxed);
  return counters;
}

std::vector<std::pair<std::string, ModelCounters>>
InferenceEngine::model_counters() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  std::vector<std::pair<std::string, ModelCounters>> out;
  out.reserve(model_states_.size());
  for (const auto& [name, state] : model_states_) {
    ModelCounters c;
    c.submitted = state->submitted.load(std::memory_order_relaxed);
    c.completed = state->completed.load(std::memory_order_relaxed);
    c.failed = state->failed.load(std::memory_order_relaxed);
    c.batches = state->batches.load(std::memory_order_relaxed);
    c.publishes = state->chain->publishes();
    c.version = state->chain->current_version();
    c.max_batch_rows = state->max_batch_rows.load(std::memory_order_relaxed);
    out.emplace_back(name, c);
  }
  return out;
}

std::vector<std::pair<std::string, TenantCounters>>
InferenceEngine::tenant_counters() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  std::vector<std::pair<std::string, TenantCounters>> out;
  out.reserve(tenant_states_.size());
  for (const auto& [name, state] : tenant_states_) {
    TenantCounters c;
    c.submitted = state->submitted.load(std::memory_order_relaxed);
    c.completed = state->completed.load(std::memory_order_relaxed);
    c.failed = state->failed.load(std::memory_order_relaxed);
    c.shed = state->shed.load(std::memory_order_relaxed);
    c.quota_rejected = state->quota_rejected.load(std::memory_order_relaxed);
    out.emplace_back(name, c);
  }
  return out;
}

std::vector<std::pair<std::string, std::uint64_t>>
InferenceEngine::fleet_counter_fields() const {
  std::vector<std::pair<std::string, std::uint64_t>> fields;
  for (const auto& [name, counters] : model_counters()) {
    for (auto& field : model_counter_fields(name, counters)) {
      fields.push_back(std::move(field));
    }
  }
  for (const auto& [name, counters] : tenant_counters()) {
    for (auto& field : tenant_counter_fields(name, counters)) {
      fields.push_back(std::move(field));
    }
  }
  return fields;
}

std::vector<std::pair<std::string, std::uint64_t>> counter_fields(
    const EngineCounters& counters) {
  return {
      {"serve.submitted", counters.submitted},
      {"serve.completed", counters.completed},
      {"serve.failed", counters.failed},
      {"serve.shed", counters.shed},
      {"serve.quota_rejected", counters.quota_rejected},
      {"serve.batches", counters.batches},
      {"serve.publishes", counters.publishes},
      {"serve.max_batch_rows", counters.max_batch_rows},
      {"serve.nonfinite_draws", counters.nonfinite_draws},
  };
}

std::vector<std::pair<std::string, std::uint64_t>> model_counter_fields(
    const std::string& model, const ModelCounters& counters) {
  const std::vector<std::pair<std::string, std::string>> label = {
      {"model", model}};
  return {
      {telemetry::labeled_name("serve.model.submitted", label),
       counters.submitted},
      {telemetry::labeled_name("serve.model.completed", label),
       counters.completed},
      {telemetry::labeled_name("serve.model.failed", label), counters.failed},
      {telemetry::labeled_name("serve.model.batches", label),
       counters.batches},
      {telemetry::labeled_name("serve.model.publishes", label),
       counters.publishes},
      {telemetry::labeled_name("serve.model.version", label),
       counters.version},
      {telemetry::labeled_name("serve.model.max_batch_rows", label),
       counters.max_batch_rows},
  };
}

std::vector<std::pair<std::string, std::uint64_t>> tenant_counter_fields(
    const std::string& tenant, const TenantCounters& counters) {
  const std::vector<std::pair<std::string, std::string>> label = {
      {"tenant", tenant}};
  return {
      {telemetry::labeled_name("serve.tenant.submitted", label),
       counters.submitted},
      {telemetry::labeled_name("serve.tenant.completed", label),
       counters.completed},
      {telemetry::labeled_name("serve.tenant.failed", label),
       counters.failed},
      {telemetry::labeled_name("serve.tenant.shed", label), counters.shed},
      {telemetry::labeled_name("serve.tenant.quota_rejected", label),
       counters.quota_rejected},
  };
}

}  // namespace vqmc::serve
