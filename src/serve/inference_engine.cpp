#include "serve/inference_engine.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "core/local_energy.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/tracer.hpp"

namespace vqmc::serve {

namespace {

/// The batching window is consumed in slices of max_wait_us / kWindowSlices
/// so the adaptive close (see worker_loop) can detect a stalled window
/// without turning every lone request into its own batch: open-loop bursts
/// arriving within a slice still coalesce, while a closed-loop stall costs
/// at most one slice of idle wait instead of the whole window.
constexpr std::size_t kWindowSlices = 8;

const char* kind_name(int kind) {
  switch (kind) {
    case 0:
      return "sample";
    case 1:
      return "log_psi";
    default:
      return "local_energy";
  }
}

}  // namespace

InferenceEngine::InferenceEngine(ServeConfig config)
    : config_(std::move(config)) {
  VQMC_REQUIRE(config_.workers >= 1, "serve: need at least one worker");
  VQMC_REQUIRE(config_.max_batch_rows >= 1,
               "serve: micro-batch budget must be positive");
  VQMC_REQUIRE(config_.max_pending_rows >= config_.max_batch_rows,
               "serve: admission bound below the micro-batch budget");
  VQMC_REQUIRE(config_.max_wait_us >= 0, "serve: negative batching window");
  workers_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

InferenceEngine::~InferenceEngine() { shutdown(); }

std::uint64_t InferenceEngine::publish(
    std::shared_ptr<const ModelSnapshot> snapshot) {
  VQMC_REQUIRE(snapshot != nullptr, "serve: cannot publish a null snapshot");
  const auto previous = published_.load(std::memory_order_acquire);
  if (previous != nullptr &&
      previous->snapshot->num_spins() != snapshot->num_spins()) {
    throw SnapshotMismatchError(
        "serve: published model has " +
        std::to_string(snapshot->num_spins()) + " spins but version " +
        std::to_string(previous->version) + " served " +
        std::to_string(previous->snapshot->num_spins()) +
        " — a hot-swap may retune weights, not change the problem size");
  }
  auto next = std::make_shared<const Published>(
      Published{next_version_.fetch_add(1, std::memory_order_relaxed) + 1,
                std::move(snapshot)});
  const std::uint64_t version = next->version;
  published_.store(std::move(next), std::memory_order_release);
  publishes_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry::enabled()) {
    telemetry::metrics().counter("serve.publishes").add();
  }
  return version;
}

std::uint64_t InferenceEngine::publish_model(const Made& model) {
  return publish(ModelSnapshot::from_model(model));
}

std::uint64_t InferenceEngine::publish_checkpoint(
    const TrainingSnapshot& snapshot) {
  return publish(ModelSnapshot::from_training_snapshot(snapshot));
}

std::shared_ptr<const ModelSnapshot> InferenceEngine::current_snapshot()
    const {
  const auto published = published_.load(std::memory_order_acquire);
  return published == nullptr ? nullptr : published->snapshot;
}

std::uint64_t InferenceEngine::current_version() const {
  const auto published = published_.load(std::memory_order_acquire);
  return published == nullptr ? 0 : published->version;
}

std::future<SampleResult> InferenceEngine::submit_sample(std::size_t count,
                                                         std::uint64_t seed,
                                                         double timeout_us) {
  VQMC_REQUIRE(count > 0, "serve: sample count must be positive");
  auto request = std::make_unique<Request>();
  request->kind = Kind::Sample;
  request->rows = count;
  request->seed = seed;
  return enqueue_sample(std::move(request), timeout_us);
}

std::future<EvalResult> InferenceEngine::submit_log_psi(Matrix configs,
                                                        double timeout_us) {
  auto request = std::make_unique<Request>();
  request->kind = Kind::LogPsi;
  request->rows = configs.rows();
  request->configs = std::move(configs);
  return enqueue_eval(std::move(request), timeout_us);
}

std::future<EvalResult> InferenceEngine::submit_local_energy(
    Matrix configs, double timeout_us) {
  VQMC_REQUIRE(config_.hamiltonian != nullptr,
               "serve: engine was configured without a Hamiltonian; "
               "local-energy requests are unavailable");
  auto request = std::make_unique<Request>();
  request->kind = Kind::LocalEnergy;
  request->rows = configs.rows();
  request->configs = std::move(configs);
  return enqueue_eval(std::move(request), timeout_us);
}

std::future<SampleResult> InferenceEngine::enqueue_sample(
    std::unique_ptr<Request> request, double timeout_us) {
  std::future<SampleResult> future = request->sample_promise.get_future();
  admit(std::move(request), timeout_us);
  return future;
}

std::future<EvalResult> InferenceEngine::enqueue_eval(
    std::unique_ptr<Request> request, double timeout_us) {
  std::future<EvalResult> future = request->eval_promise.get_future();
  admit(std::move(request), timeout_us);
  return future;
}

void InferenceEngine::admit(std::unique_ptr<Request> request,
                            double timeout_us) {
  const auto published = published_.load(std::memory_order_acquire);
  VQMC_REQUIRE(published != nullptr,
               "serve: no model published; publish a snapshot first");
  if (request->kind != Kind::Sample) {
    VQMC_REQUIRE(request->configs.cols() == published->snapshot->num_spins(),
                 "serve: request configurations have the wrong spin count");
  }
  VQMC_REQUIRE(request->rows > 0, "serve: empty request");
  VQMC_REQUIRE(timeout_us >= 0, "serve: negative request timeout");

  const std::size_t rows = request->rows;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw ServeShutdownError("serve: engine is shut down");
    }
    if (pending_rows_ + rows > config_.max_pending_rows) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      if (telemetry::enabled()) {
        telemetry::metrics().counter("serve.shed").add();
      }
      throw ServeOverloadError(
          "serve: overloaded — " + std::to_string(pending_rows_) +
          " rows outstanding, request of " + std::to_string(rows) +
          " exceeds the bound of " +
          std::to_string(config_.max_pending_rows));
    }
    request->enqueue_us = telemetry::now_us();
    if (timeout_us > 0) {
      request->deadline_us = request->enqueue_us + timeout_us;
    }
    queue_.push_back(std::move(request));
    queued_rows_ += rows;
    pending_rows_ += rows;
    submitted_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::enabled()) {
      telemetry::MetricsRegistry& registry = telemetry::metrics();
      registry.counter("serve.requests").add();
      registry.gauge("serve.queue_rows").set(double(queued_rows_));
    }
  }
  work_cv_.notify_one();
}

void InferenceEngine::worker_loop() {
  // Per-worker model workspace: activation scratch stops allocating once
  // batch shapes stabilize, and stays private to this thread.
  Made::Workspace ws;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [this] {
      return stopping_ || (!queue_.empty() && !paused_);
    });
    if (queue_.empty() || (paused_ && !stopping_)) {
      if (stopping_) return;
      continue;
    }

    // Open a micro-batch around the oldest request; its arrival time
    // anchors the batching window.
    const Kind kind = queue_.front()->kind;
    const double window_end =
        queue_.front()->enqueue_us + config_.max_wait_us;
    std::vector<std::unique_ptr<Request>> batch;
    std::size_t rows = 0;

    const auto harvest = [&] {
      for (auto it = queue_.begin(); it != queue_.end();) {
        Request& candidate = **it;
        if (candidate.kind == kind &&
            (rows == 0 || rows + candidate.rows <= config_.max_batch_rows)) {
          rows += candidate.rows;
          queued_rows_ -= candidate.rows;
          batch.push_back(std::move(*it));
          it = queue_.erase(it);
          if (rows >= config_.max_batch_rows) break;
        } else {
          ++it;
        }
      }
    };
    harvest();

    // Hold the batch open for late co-batchable arrivals until the window
    // closes or the row budget fills.  Shutdown collapses the window so the
    // backlog drains promptly.  The wait is sliced: a slice that elapses
    // with no growth while every outstanding row is already in this batch
    // means every producer is blocked on this very dispatch (closed-loop
    // traffic), so the rest of the window cannot fill and is forfeited.
    // Waiting the window out regardless used to cap the coalescing gain
    // below 1 at max_batch_rows=128 / max_wait_us=4000 in the serve bench.
    const double slice_us = config_.max_wait_us / double(kWindowSlices);
    while (!stopping_ && rows < config_.max_batch_rows) {
      const double now = telemetry::now_us();
      if (now >= window_end) break;
      const std::size_t rows_before = rows;
      work_cv_.wait_for(lock, std::chrono::duration<double, std::micro>(
                                  std::min(slice_us, window_end - now)));
      harvest();
      if (rows == rows_before && pending_rows_ == rows) break;
    }

    if (telemetry::enabled()) {
      telemetry::metrics().gauge("serve.queue_rows").set(double(queued_rows_));
    }
    lock.unlock();
    // Record the high-water batch occupancy (the saturation tests pin that
    // a backed-up queue actually fills max_batch_rows-row batches).
    std::uint64_t seen = max_batch_rows_.load(std::memory_order_relaxed);
    while (seen < rows && !max_batch_rows_.compare_exchange_weak(
                              seen, rows, std::memory_order_relaxed)) {
    }
    execute_batch(kind, batch, rows, ws);
    finish_rows(rows);
    lock.lock();
  }
}

void InferenceEngine::finish_rows(std::size_t rows) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_rows_ -= rows;
  }
  drain_cv_.notify_all();
}

void InferenceEngine::fail_request(Request& request,
                                   std::exception_ptr error) {
  // Count before fulfilling (see execute_batch): a client unblocked by the
  // future must already see itself in counters().failed.
  failed_.fetch_add(1, std::memory_order_relaxed);
  if (request.kind == Kind::Sample) {
    request.sample_promise.set_exception(error);
  } else {
    request.eval_promise.set_exception(error);
  }
}

void InferenceEngine::execute_batch(
    Kind kind, std::vector<std::unique_ptr<Request>>& batch,
    std::size_t rows, Made::Workspace& ws) {
  TELEMETRY_SPAN("serve.batch");
  // Bind the batch to exactly one published version: every response below
  // is attributable to this snapshot and no other.
  const auto published = published_.load(std::memory_order_acquire);
  const std::uint64_t version = published->version;
  const ModelSnapshot& snapshot = *published->snapshot;
  const double start_us = telemetry::now_us();

  // Expired requests are failed (reported!) up front and excluded from the
  // compute batch.
  std::vector<Request*> live;
  live.reserve(batch.size());
  std::size_t live_rows = 0;
  for (auto& request : batch) {
    if (request->deadline_us < start_us) {
      fail_request(*request,
                   std::make_exception_ptr(ServeDeadlineError(
                       "serve: deadline expired before dispatch")));
      if (telemetry::enabled()) {
        telemetry::metrics().counter("serve.deadline_expired").add();
      }
    } else {
      live.push_back(request.get());
      live_rows += request->rows;
    }
  }
  batches_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry::enabled()) {
    telemetry::MetricsRegistry& registry = telemetry::metrics();
    registry.counter("serve.batches").add();
    registry.counter(std::string("serve.batches.") +
                     kind_name(int(kind)))
        .add();
    registry.histogram("serve.batch_rows").observe(double(rows));
  }
  if (live.empty()) return;

  try {
    const std::size_t n = snapshot.num_spins();
    if (kind == Kind::Sample) {
      // One ancestral pass over the sites serves every request; each
      // request's rows consume its own seed stream (bit-identical to a
      // dedicated FastMadeSampler).
      Matrix out(live_rows, n);
      std::vector<rng::Xoshiro256> gens;
      gens.reserve(live.size());
      for (const Request* request : live) gens.emplace_back(request->seed);
      std::vector<ModelSnapshot::SampleSlice> slices(live.size());
      std::size_t row = 0;
      for (std::size_t r = 0; r < live.size(); ++r) {
        slices[r] = {row, live[r]->rows, &gens[r]};
        row += live[r]->rows;
      }
      snapshot.sample(out, slices);
      const double end_us = telemetry::now_us();
      row = 0;
      for (Request*& request : live) {
        SampleResult result;
        result.samples = Matrix(request->rows, n);
        std::copy_n(out.data() + row * n, request->rows * n,
                    result.samples.data());
        result.model_version = version;
        row += request->rows;
        const double enqueue_us = request->enqueue_us;
        // Count before fulfilling: a client unblocked by the future must
        // already see itself in counters().completed.
        completed_.fetch_add(1, std::memory_order_relaxed);
        request->sample_promise.set_value(std::move(result));
        request = nullptr;  // fulfilled; the catch below must skip it
        if (telemetry::enabled()) {
          telemetry::MetricsRegistry& registry = telemetry::metrics();
          registry.counter("serve.responses").add();
          registry.histogram("serve.latency_seconds")
              .observe((end_us - enqueue_us) * 1e-6);
        }
      }
    } else {
      // Stack the request configurations into one forward batch.
      Matrix all(live_rows, n);
      std::size_t row = 0;
      for (const Request* request : live) {
        std::copy_n(request->configs.data(), request->rows * n,
                    all.data() + row * n);
        row += request->rows;
      }
      std::vector<Real> values(live_rows);
      if (kind == Kind::LogPsi) {
        snapshot.log_psi(all, values, ws);
      } else {
        LocalEnergyEngine engine(*config_.hamiltonian, snapshot.model());
        engine.compute(all, values);
      }
      const double end_us = telemetry::now_us();
      row = 0;
      for (Request*& request : live) {
        EvalResult result;
        result.values.assign(values.begin() + std::ptrdiff_t(row),
                             values.begin() +
                                 std::ptrdiff_t(row + request->rows));
        result.model_version = version;
        row += request->rows;
        const double enqueue_us = request->enqueue_us;
        completed_.fetch_add(1, std::memory_order_relaxed);
        request->eval_promise.set_value(std::move(result));
        request = nullptr;  // fulfilled; the catch below must skip it
        if (telemetry::enabled()) {
          telemetry::MetricsRegistry& registry = telemetry::metrics();
          registry.counter("serve.responses").add();
          registry.histogram("serve.latency_seconds")
              .observe((end_us - enqueue_us) * 1e-6);
        }
      }
    }
  } catch (...) {
    // A kernel-level failure fails every not-yet-fulfilled request in the
    // batch — each future observes the error, so nothing is dropped
    // unreported.
    const std::exception_ptr error = std::current_exception();
    for (Request* request : live) {
      if (request != nullptr) fail_request(*request, error);
    }
  }
}

void InferenceEngine::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drain_cv_.wait(lock, [this] { return pending_rows_ == 0; });
}

void InferenceEngine::pause() {
  std::lock_guard<std::mutex> lock(mutex_);
  paused_ = true;
}

void InferenceEngine::resume() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

void InferenceEngine::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      // Idempotent: a second shutdown only needs the joins below to have
      // happened, which the first call guarantees.
      return;
    }
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

EngineCounters InferenceEngine::counters() const {
  EngineCounters counters;
  counters.submitted = submitted_.load(std::memory_order_relaxed);
  counters.completed = completed_.load(std::memory_order_relaxed);
  counters.failed = failed_.load(std::memory_order_relaxed);
  counters.shed = shed_.load(std::memory_order_relaxed);
  counters.batches = batches_.load(std::memory_order_relaxed);
  counters.publishes = publishes_.load(std::memory_order_relaxed);
  counters.max_batch_rows = max_batch_rows_.load(std::memory_order_relaxed);
  return counters;
}

std::vector<std::pair<std::string, std::uint64_t>> counter_fields(
    const EngineCounters& counters) {
  return {
      {"serve.submitted", counters.submitted},
      {"serve.completed", counters.completed},
      {"serve.failed", counters.failed},
      {"serve.shed", counters.shed},
      {"serve.batches", counters.batches},
      {"serve.publishes", counters.publishes},
      {"serve.max_batch_rows", counters.max_batch_rows},
  };
}

}  // namespace vqmc::serve
