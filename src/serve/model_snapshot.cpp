#include "serve/model_snapshot.hpp"

#include <algorithm>

#include "rng/distributions.hpp"
#include "tensor/kernels.hpp"

namespace vqmc::serve {

std::shared_ptr<const ModelSnapshot> ModelSnapshot::from_model(
    const Made& model) {
  return std::shared_ptr<const ModelSnapshot>(new ModelSnapshot(model));
}

std::shared_ptr<const ModelSnapshot> ModelSnapshot::from_training_snapshot(
    const TrainingSnapshot& snapshot) {
  if (snapshot.model_name != "MADE") {
    throw SnapshotMismatchError("serve: checkpoint holds a '" +
                                snapshot.model_name +
                                "' model; only MADE is servable");
  }
  const std::uint64_t n = snapshot.num_spins;
  const std::uint64_t d = snapshot.num_parameters;
  if (n < 2) {
    throw SnapshotMismatchError(
        "serve: checkpoint spin count " + std::to_string(n) +
        " is not a valid MADE (need at least 2 spins)");
  }
  // d = 2hn + h + n  =>  h = (d - n) / (2n + 1), which must be integral.
  if (d <= n || (d - n) % (2 * n + 1) != 0) {
    throw SnapshotMismatchError(
        "serve: checkpoint parameter count " + std::to_string(d) +
        " does not factor as 2hn + h + n for n = " + std::to_string(n));
  }
  const std::uint64_t h = (d - n) / (2 * n + 1);
  if (h < 1) {
    throw SnapshotMismatchError("serve: checkpoint implies hidden width 0");
  }
  if (snapshot.parameters.size() != d) {
    throw SnapshotMismatchError(
        "serve: checkpoint declares " + std::to_string(d) +
        " parameters but carries " +
        std::to_string(snapshot.parameters.size()));
  }
  Made model{std::size_t(n), std::size_t(h)};
  std::copy(snapshot.parameters.begin(), snapshot.parameters.end(),
            model.parameters().begin());
  return std::shared_ptr<const ModelSnapshot>(
      new ModelSnapshot(std::move(model)));
}

void ModelSnapshot::log_psi(const Matrix& batch, std::span<Real> out) const {
  Made::Workspace ws;
  log_psi(batch, out, ws);
}

void ModelSnapshot::log_psi(const Matrix& batch, std::span<Real> out,
                            Made::Workspace& ws) const {
  // Per-row arithmetic is independent of the batch composition, so
  // coalescing requests cannot perturb any row's value.  The packed masked
  // weights were built once at snapshot construction; this call touches
  // only the model's prebuilt plan plus the caller's workspace.
  model_.log_psi(batch, out, ws);
}

void ModelSnapshot::sample(Matrix& out,
                           std::span<const SampleSlice> slices) const {
  const std::size_t n = model_.num_spins();
  const std::size_t h = model_.hidden_size();
  VQMC_REQUIRE(out.cols() == n, "serve: output batch has wrong spin count");
  const std::size_t bs = out.rows();
  VQMC_REQUIRE(bs > 0, "serve: sample batch must be non-empty");
  for (const SampleSlice& s : slices) {
    VQMC_REQUIRE(s.gen != nullptr && s.row_count > 0 &&
                     s.row_begin + s.row_count <= bs,
                 "serve: invalid sample slice");
  }

  // Prebuilt packed weights — nothing is materialized per request.
  const Matrix& w1m = masked_->w1m;
  const Matrix& w2m = masked_->w2m;
  const RowExtents& w1_ext = model_.w1_extents();
  const RowExtentsView w2_ext = model_.w2_extents().view();
  const std::span<const Real> b1 = model_.bias1();
  const std::span<const Real> b2 = model_.bias2();

  // Running hidden pre-activations, rank-1-updated exactly as in
  // FastMadeSampler (the all-zeros start contributes only the bias).
  Matrix a1(bs, h);
  for (std::size_t k = 0; k < bs; ++k) {
    Real* row = a1.row(k).data();
    for (std::size_t l = 0; l < h; ++l) row[l] = b1[l];
  }
  out.fill(0);

  for (std::size_t i = 0; i < n; ++i) {
    const Real* w2_row = w2m.row(i).data();
    const std::span<const ColSpan> w2_spans = w2_ext.row(i);
    const Real bias = b2[i];
    for (const SampleSlice& s : slices) {
      rng::Xoshiro256& gen = *s.gen;
      const std::size_t end = s.row_begin + s.row_count;
      for (std::size_t k = s.row_begin; k < end; ++k) {
        const Real* a_row = a1.row(k).data();
        Real logit = bias;
        // Extent-restricted, same as FastMadeSampler: the skipped entries
        // are structural zeros in W2m.
        for (const ColSpan sp : w2_spans) {
          for (std::size_t l = sp.begin; l < sp.end; ++l) {
            const Real hl = a_row[l] > 0 ? a_row[l] : 0;  // ReLU on the fly
            logit += w2_row[l] * hl;
          }
        }
        const Real p1 = sigmoid(logit);
        if (rng::bernoulli(gen, p1)) {
          out(k, i) = 1;
          Real* a_mut = a1.row(k).data();
          const Real* w1_base = w1m.data();
          for (std::size_t l = 0; l < h; ++l) {
            if (i < w1_ext.row_end(l)) a_mut[l] += w1_base[l * n + i];
          }
        }
      }
    }
  }
}

void ModelSnapshot::sample(Matrix& out, std::uint64_t seed) const {
  rng::Xoshiro256 gen(seed);
  const SampleSlice slice{0, out.rows(), &gen};
  sample(out, std::span<const SampleSlice>(&slice, 1));
}

}  // namespace vqmc::serve
