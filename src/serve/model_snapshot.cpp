#include "serve/model_snapshot.hpp"

#include <algorithm>

#include "rng/distributions.hpp"
#include "tensor/kernels.hpp"

namespace vqmc::serve {

std::shared_ptr<const ModelSnapshot> ModelSnapshot::from_model(
    const Made& model) {
  return std::shared_ptr<const ModelSnapshot>(new ModelSnapshot(model));
}

std::shared_ptr<const ModelSnapshot> ModelSnapshot::from_training_snapshot(
    const TrainingSnapshot& snapshot) {
  if (snapshot.model_name != "MADE") {
    throw SnapshotMismatchError("serve: checkpoint holds a '" +
                                snapshot.model_name +
                                "' model; only MADE is servable");
  }
  const std::uint64_t n = snapshot.num_spins;
  const std::uint64_t d = snapshot.num_parameters;
  if (n < 2) {
    throw SnapshotMismatchError(
        "serve: checkpoint spin count " + std::to_string(n) +
        " is not a valid MADE (need at least 2 spins)");
  }
  // d = 2hn + h + n  =>  h = (d - n) / (2n + 1), which must be integral.
  if (d <= n || (d - n) % (2 * n + 1) != 0) {
    throw SnapshotMismatchError(
        "serve: checkpoint parameter count " + std::to_string(d) +
        " does not factor as 2hn + h + n for n = " + std::to_string(n));
  }
  const std::uint64_t h = (d - n) / (2 * n + 1);
  if (h < 1) {
    throw SnapshotMismatchError("serve: checkpoint implies hidden width 0");
  }
  if (snapshot.parameters.size() != d) {
    throw SnapshotMismatchError(
        "serve: checkpoint declares " + std::to_string(d) +
        " parameters but carries " +
        std::to_string(snapshot.parameters.size()));
  }
  Made model{std::size_t(n), std::size_t(h)};
  std::copy(snapshot.parameters.begin(), snapshot.parameters.end(),
            model.parameters().begin());
  return std::shared_ptr<const ModelSnapshot>(
      new ModelSnapshot(std::move(model)));
}

void ModelSnapshot::log_psi(const Matrix& batch, std::span<Real> out) const {
  Made::Workspace ws;
  log_psi(batch, out, ws);
}

void ModelSnapshot::log_psi(const Matrix& batch, std::span<Real> out,
                            Made::Workspace& ws) const {
  // Per-row arithmetic is independent of the batch composition, so
  // coalescing requests cannot perturb any row's value.  The packed masked
  // weights were built once at snapshot construction; this call touches
  // only the model's prebuilt plan plus the caller's workspace.
  model_.log_psi(batch, out, ws);
}

void ModelSnapshot::sample(Matrix& out,
                           std::span<const SampleSlice> slices) const {
  const std::size_t n = model_.num_spins();
  const std::size_t h = model_.hidden_size();
  VQMC_REQUIRE(out.cols() == n, "serve: output batch has wrong spin count");
  const std::size_t bs = out.rows();
  VQMC_REQUIRE(bs > 0, "serve: sample batch must be non-empty");
  for (const SampleSlice& s : slices) {
    VQMC_REQUIRE(s.gen != nullptr && s.row_count > 0 &&
                     s.row_begin + s.row_count <= bs,
                 "serve: invalid sample slice");
  }

  // Prebuilt packed weights — nothing is materialized per request.
  const ColPanelGeometry& w1_cols = model_.w1_col_panels();
  const Real* w1_col_values = masked_->w1_col_values.data();
  const RowExtentsView w2_ext = model_.w2_extents().view();
  const std::span<const Real> b1 = model_.bias1();
  const std::span<const Real> b2 = model_.bias2();

  // Running hidden pre-activations, rank-1-updated exactly as in
  // FastMadeSampler (the all-zeros start contributes only the bias).
  Matrix a1(bs, h);
  for (std::size_t k = 0; k < bs; ++k) {
    Real* row = a1.row(k).data();
    for (std::size_t l = 0; l < h; ++l) row[l] = b1[l];
  }
  out.fill(0);

  for (std::size_t i = 0; i < n; ++i) {
    const Real* w2_panel = masked_->w2p.row(i);
    const std::span<const ColSpan> w2_spans = w2_ext.row(i);
    const std::span<const std::uint32_t> upd_rows = w1_cols.col(i);
    const Real* upd_vals = w1_col_values + w1_cols.offsets[i];
    const Real bias = b2[i];
    for (const SampleSlice& s : slices) {
      rng::Xoshiro256& gen = *s.gen;
      const std::size_t end = s.row_begin + s.row_count;
      for (std::size_t k = s.row_begin; k < end; ++k) {
        const Real* a_row = a1.row(k).data();
        // relu_dot_panels is the exact primitive FastMadeSampler calls, so
        // the two paths stay mutually bit-identical under the same stream.
        const Real logit = bias + relu_dot_panels(w2_spans, a_row, w2_panel);
        const Real p1 = sigmoid(logit);
        if (rng::bernoulli(gen, p1)) {
          out(k, i) = 1;
          Real* a_mut = a1.row(k).data();
          for (std::size_t t = 0; t < upd_rows.size(); ++t)
            a_mut[upd_rows[t]] += upd_vals[t];
        }
      }
    }
  }
}

void ModelSnapshot::sample(Matrix& out, std::uint64_t seed) const {
  rng::Xoshiro256 gen(seed);
  const SampleSlice slice{0, out.rows(), &gen};
  sample(out, std::span<const SampleSlice>(&slice, 1));
}

}  // namespace vqmc::serve
