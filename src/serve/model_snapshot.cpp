#include "serve/model_snapshot.hpp"

#include <algorithm>

namespace vqmc::serve {

std::shared_ptr<const ModelSnapshot> ModelSnapshot::from_model(
    const Made& model) {
  return std::shared_ptr<const ModelSnapshot>(new ModelSnapshot(model));
}

std::shared_ptr<const ModelSnapshot> ModelSnapshot::from_training_snapshot(
    const TrainingSnapshot& snapshot) {
  if (snapshot.model_name != "MADE") {
    throw SnapshotMismatchError("serve: checkpoint holds a '" +
                                snapshot.model_name +
                                "' model; only MADE is servable");
  }
  const std::uint64_t n = snapshot.num_spins;
  const std::uint64_t d = snapshot.num_parameters;
  if (n < 2) {
    throw SnapshotMismatchError(
        "serve: checkpoint spin count " + std::to_string(n) +
        " is not a valid MADE (need at least 2 spins)");
  }
  // d = 2hn + h + n  =>  h = (d - n) / (2n + 1), which must be integral.
  if (d <= n || (d - n) % (2 * n + 1) != 0) {
    throw SnapshotMismatchError(
        "serve: checkpoint parameter count " + std::to_string(d) +
        " does not factor as 2hn + h + n for n = " + std::to_string(n));
  }
  const std::uint64_t h = (d - n) / (2 * n + 1);
  if (h < 1) {
    throw SnapshotMismatchError("serve: checkpoint implies hidden width 0");
  }
  if (snapshot.parameters.size() != d) {
    throw SnapshotMismatchError(
        "serve: checkpoint declares " + std::to_string(d) +
        " parameters but carries " +
        std::to_string(snapshot.parameters.size()));
  }
  Made model{std::size_t(n), std::size_t(h)};
  std::copy(snapshot.parameters.begin(), snapshot.parameters.end(),
            model.parameters().begin());
  return std::shared_ptr<const ModelSnapshot>(
      new ModelSnapshot(std::move(model)));
}

void ModelSnapshot::log_psi(const Matrix& batch, std::span<Real> out) const {
  Made::Workspace ws;
  log_psi(batch, out, ws);
}

void ModelSnapshot::log_psi(const Matrix& batch, std::span<Real> out,
                            Made::Workspace& ws) const {
  // Per-row arithmetic is independent of the batch composition, so
  // coalescing requests cannot perturb any row's value.  The packed masked
  // weights were built once at snapshot construction; this call touches
  // only the model's prebuilt plan plus the caller's workspace.
  model_.log_psi(batch, out, ws);
}

std::uint64_t ModelSnapshot::sample(Matrix& out,
                                    std::span<const SampleSlice> slices,
                                    Made::Workspace& ws) const {
  // The shared batched conditional engine runs over the snapshot's pinned
  // packed weights (masked_, built once at construction) — nothing is
  // materialized per request, and all scratch lives in the caller's
  // workspace.  FastMadeSampler drives the identical engine, so the two
  // draw streams stay mutually bit-identical under the same stream.
  return sample_conditionals_batched(model_, *masked_, out, slices, ws);
}

std::uint64_t ModelSnapshot::sample(Matrix& out,
                                    std::span<const SampleSlice> slices) const {
  Made::Workspace ws;
  return sample(out, slices, ws);
}

std::uint64_t ModelSnapshot::sample(Matrix& out, std::uint64_t seed) const {
  rng::Xoshiro256 gen(seed);
  const SampleSlice slice{0, out.rows(), &gen};
  return sample(out, std::span<const SampleSlice>(&slice, 1));
}

}  // namespace vqmc::serve
