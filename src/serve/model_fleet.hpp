#pragma once

/// \file model_fleet.hpp
/// \brief Registry of named, independently hot-swappable model chains
/// (DESIGN.md §5j).
///
/// Serve v1 hosted exactly one model per engine; a sweep of per-instance
/// ansatz snapshots (e.g. one MADE per Max-Cut instance) therefore needed
/// one engine — and one worker pool — per model.  A `ModelFleet` lifts the
/// single `atomic<shared_ptr>` hot-swap chain (§5e) into a registry: each
/// named model owns its own published-version chain with its own monotone
/// version counter and its own problem-size pin, all served by one shared
/// worker pool.
///
/// Concurrency contract:
///   * `FleetModel` addresses are stable for the fleet's lifetime (models
///     are never erased), so the engine and scheduler key queues by
///     `FleetModel*`.
///   * `FleetModel::publish` is serialized per model by a small mutex (the
///     version check-then-assign must be atomic against a racing publish),
///     while `current()` stays a lock-free atomic shared_ptr load — the
///     request hot path never touches the publish mutex.
///   * `ensure()` takes the registry mutex only on the publish/registration
///     path; workers resolve models once at admission and never look them
///     up again.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/model_snapshot.hpp"

namespace vqmc::serve {

/// One model's published snapshot at a point in time: the immutable
/// snapshot plus its model-scoped monotone version.
struct PublishedModel {
  std::uint64_t version = 0;
  std::shared_ptr<const ModelSnapshot> snapshot;
};

/// One named, hot-swappable model chain.  Obtained from ModelFleet::ensure;
/// the address is stable for the fleet's lifetime.
class FleetModel {
 public:
  explicit FleetModel(std::string name) : name_(std::move(name)) {}
  FleetModel(const FleetModel&) = delete;
  FleetModel& operator=(const FleetModel&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Install `snapshot` as this model's current version (first publish is
  /// version 1).  Throws SnapshotMismatchError when the spin count differs
  /// from the versions this model has served — a hot-swap may retune
  /// weights, not change the problem (other fleet models are free to serve
  /// other sizes).
  std::uint64_t publish(std::shared_ptr<const ModelSnapshot> snapshot);

  /// Lock-free load of the current version (nullptr before first publish).
  [[nodiscard]] std::shared_ptr<const PublishedModel> current() const {
    return published_.load(std::memory_order_acquire);
  }
  /// Version of the current snapshot (0 before first publish).
  [[nodiscard]] std::uint64_t current_version() const;
  /// Monotone count of publishes to this model.
  [[nodiscard]] std::uint64_t publishes() const {
    return publishes_.load(std::memory_order_relaxed);
  }

 private:
  std::string name_;
  std::atomic<std::shared_ptr<const PublishedModel>> published_;
  std::atomic<std::uint64_t> publishes_{0};
  std::mutex publish_mutex_;  ///< serializes check-then-assign in publish()
};

/// Registry of named model chains (see file comment).  Thread-safe.
class ModelFleet {
 public:
  ModelFleet() = default;
  ModelFleet(const ModelFleet&) = delete;
  ModelFleet& operator=(const ModelFleet&) = delete;

  /// The chain named `name`, created empty on first use.  The returned
  /// reference stays valid for the fleet's lifetime.
  FleetModel& ensure(const std::string& name);

  /// The chain named `name`, or nullptr when it was never registered.
  [[nodiscard]] const FleetModel* find(const std::string& name) const;

  /// Registered model names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<FleetModel>> models_;
};

}  // namespace vqmc::serve
