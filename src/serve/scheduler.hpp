#pragma once

/// \file scheduler.hpp
/// \brief Multi-queue serving scheduler: per-tenant token-bucket admission,
/// interactive/batch priority lanes with starvation-proof weighted pickup,
/// and earliest-deadline-first batch formation (DESIGN.md §5j).
///
/// The scheduler replaces the single FIFO of serve v1 with a queue topology
/// keyed by (model, request kind):
///
///   * **Admission quotas.** Every tenant named in `tenant_quotas` owns a
///     token bucket measured in rows: capacity `burst_rows`, refilled at
///     `rows_per_second` (0 = a burst-only budget that never refills).
///     Admission of an r-row request consumes r tokens or is rejected with
///     no deduction — the caller surfaces that as a typed ServeQuotaError,
///     distinct from capacity overload.  Tenants without a quota entry are
///     unlimited (admission falls through to the engine's global
///     `max_pending_rows` backpressure either way).
///   * **Priority lanes.** Each (model, kind) group holds two queues —
///     interactive and batch.  Workers pick the lane by weighted
///     round-robin over a fixed cursor schedule of length
///     `interactive_weight + batch_weight`, falling back to the other lane
///     when the scheduled one is empty: with both lanes backlogged the
///     batch lane is guaranteed `batch_weight` pickups per cycle, so bulk
///     traffic can never be starved, and interactive traffic gets the
///     remaining share of dispatches.
///   * **Deadline-aware ordering.** Within a lane, requests are kept in
///     earliest-deadline-first order (ties broken by arrival sequence, so
///     deadline-free traffic degrades to FIFO).  A near-deadline request
///     admitted behind a wide backlog is harvested at the front of the next
///     batch instead of waiting out the queue — it either makes its
///     deadline or is failed *before* execution, never after wasted
///     compute.  Batch formation never mixes models or kinds, but freely
///     mixes tenants and tops a batch up from the other lane of the same
///     group (interactive first) once the primary lane is drained.
///
/// The scheduler is a policy object, not a thread-safe component: the
/// owning engine drives it under its own mutex.  That keeps it directly
/// unit-testable (tests/serve/test_scheduler.cpp injects timestamps and
/// stub requests) and keeps all lock discipline in one place.

#include <array>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace vqmc::serve {

/// Scheduling lane of a request.  Interactive is for latency-sensitive
/// callers (weighted toward earlier pickup); batch is bulk traffic that
/// tolerates queueing but must never starve.
enum class Priority {
  kInteractive = 0,
  kBatch = 1,
};

/// Lane name ("interactive" / "batch") for metric labels and logs.
[[nodiscard]] const char* priority_name(Priority priority);

/// Per-tenant admission budget: a token bucket measured in rows.
struct TenantQuota {
  /// Sustained admission rate (rows per second refilled into the bucket).
  /// 0 means the bucket never refills — `burst_rows` is a hard budget.
  double rows_per_second = 0;
  /// Bucket capacity (and initial fill), in rows.  Must be >= 1.
  double burst_rows = 0;
};

struct SchedulerConfig {
  /// Lane pickup weights: with both lanes backlogged, out of every
  /// `interactive_weight + batch_weight` batch openings the interactive
  /// lane gets `interactive_weight` and the batch lane the rest.
  std::size_t interactive_weight = 7;
  std::size_t batch_weight = 1;
  /// Token-bucket quotas keyed by tenant id.  Absent tenants are unlimited.
  std::map<std::string, TenantQuota> tenant_quotas;
};

/// One queued unit of work, as the scheduler sees it.  The engine derives
/// its concrete request type (promises, payload) from this; the scheduler
/// only reads the routing/ordering fields.
struct QueuedRequest {
  virtual ~QueuedRequest() = default;

  /// Opaque per-model queue key (stable address of the engine's model
  /// state).  Batches never mix values of this.
  const void* model = nullptr;
  /// Opaque batch-compatibility key (request kind).  Batches never mix it.
  int kind = 0;
  Priority priority = Priority::kInteractive;
  std::size_t rows = 0;
  double enqueue_us = 0;
  /// Absolute deadline (same clock as enqueue_us); +inf = none.
  double deadline_us = std::numeric_limits<double>::infinity();
  /// Arrival sequence, assigned by the scheduler at enqueue (EDF tiebreak).
  std::uint64_t seq = 0;
};

/// Outcome of a token-bucket admission check.
struct QuotaDecision {
  bool admitted = true;
  /// Tokens available at the decision (after refill, before deduction).
  /// +inf for unlimited tenants.
  double available_rows = std::numeric_limits<double>::infinity();
  /// The tenant's quota, or nullptr when the tenant is unlimited.
  const TenantQuota* quota = nullptr;
};

/// An opened micro-batch: requests of exactly one (model, kind) group in
/// EDF order, plus the aggregates the engine's batching window needs.
struct BatchPlan {
  const void* model = nullptr;
  int kind = 0;
  std::vector<std::unique_ptr<QueuedRequest>> requests;
  std::size_t rows = 0;
  double oldest_enqueue_us = std::numeric_limits<double>::infinity();
  double earliest_deadline_us = std::numeric_limits<double>::infinity();

  [[nodiscard]] bool empty() const { return requests.empty(); }
};

/// Multi-queue scheduler (see file comment).  NOT internally synchronized.
class ServeScheduler {
 public:
  explicit ServeScheduler(SchedulerConfig config);

  /// Token-bucket check for admitting `rows` rows from `tenant` at time
  /// `now_us`.  On admission the tokens are consumed; on rejection nothing
  /// is deducted.  Unlimited tenants always admit.
  QuotaDecision try_admit(const std::string& tenant, std::size_t rows,
                          double now_us);

  /// Queue an admitted request (assigns `seq`; inserts in EDF position).
  void enqueue(std::unique_ptr<QueuedRequest> request);

  /// Open a new micro-batch of at most `max_rows` rows: pick the lane by
  /// weighted round-robin, within it the (model, kind) group whose head is
  /// most urgent, then harvest EDF-ordered requests — topping up from the
  /// other lane of the same group once the primary lane is exhausted.  An
  /// oversized head request (rows > max_rows) forms its own batch.
  /// Returns an empty plan when nothing is queued.
  [[nodiscard]] BatchPlan open_batch(std::size_t max_rows);

  /// Grow an open batch with late co-batchable arrivals of the same
  /// (model, kind), up to `max_rows` total.  Returns the rows added.
  std::size_t grow_batch(BatchPlan& plan, std::size_t max_rows);

  [[nodiscard]] bool empty() const { return queued_rows_ == 0; }
  [[nodiscard]] std::size_t queued_rows() const { return queued_rows_; }
  [[nodiscard]] const SchedulerConfig& config() const { return config_; }

 private:
  struct GroupKey {
    const void* model = nullptr;
    int kind = 0;
    bool operator<(const GroupKey& other) const {
      return model != other.model ? model < other.model : kind < other.kind;
    }
  };
  /// Per-(model, kind) queues, one per lane, each EDF-sorted by
  /// (deadline_us, seq).
  struct Group {
    std::array<std::vector<std::unique_ptr<QueuedRequest>>, 2> lanes;
    [[nodiscard]] bool empty() const {
      return lanes[0].empty() && lanes[1].empty();
    }
  };
  struct Bucket {
    TenantQuota quota;
    double tokens = 0;
    double last_refill_us = 0;
  };

  /// Move EDF-ordered requests from `lane` of `group` into `plan` while
  /// they fit (`plan.rows + rows <= max_rows`); a request that does not fit
  /// blocks the lane (EDF order is never bypassed).  Returns rows taken.
  std::size_t take_from_lane(Group& group, Priority lane, BatchPlan& plan,
                             std::size_t max_rows, bool allow_oversized);
  void erase_if_empty(const GroupKey& key);

  SchedulerConfig config_;
  std::map<GroupKey, Group> groups_;
  std::map<std::string, Bucket> buckets_;
  std::size_t queued_rows_ = 0;
  std::uint64_t next_seq_ = 0;
  /// Weighted-round-robin cursor over a schedule of length
  /// interactive_weight + batch_weight.
  std::size_t lane_cursor_ = 0;
};

}  // namespace vqmc::serve
