#include "serve/scheduler.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace vqmc::serve {

namespace {

/// EDF position: strict weak order on (deadline, arrival sequence).
bool edf_before(const std::unique_ptr<QueuedRequest>& a,
                const std::unique_ptr<QueuedRequest>& b) {
  if (a->deadline_us != b->deadline_us)
    return a->deadline_us < b->deadline_us;
  return a->seq < b->seq;
}

}  // namespace

const char* priority_name(Priority priority) {
  return priority == Priority::kInteractive ? "interactive" : "batch";
}

ServeScheduler::ServeScheduler(SchedulerConfig config)
    : config_(std::move(config)) {
  VQMC_REQUIRE(config_.interactive_weight >= 1,
               "scheduler: interactive lane weight must be >= 1");
  VQMC_REQUIRE(config_.batch_weight >= 1,
               "scheduler: batch lane weight must be >= 1 (a zero weight "
               "would starve bulk traffic)");
  for (const auto& [tenant, quota] : config_.tenant_quotas) {
    VQMC_REQUIRE(quota.burst_rows >= 1,
                 "scheduler: tenant '" + tenant +
                     "' has a burst budget below one row");
    VQMC_REQUIRE(quota.rows_per_second >= 0,
                 "scheduler: tenant '" + tenant + "' has a negative rate");
    buckets_[tenant] = Bucket{quota, quota.burst_rows, 0};
  }
}

QuotaDecision ServeScheduler::try_admit(const std::string& tenant,
                                        std::size_t rows, double now_us) {
  const auto it = buckets_.find(tenant);
  if (it == buckets_.end()) return {};  // unlimited tenant
  Bucket& bucket = it->second;
  if (bucket.quota.rows_per_second > 0 && now_us > bucket.last_refill_us) {
    bucket.tokens =
        std::min(bucket.quota.burst_rows,
                 bucket.tokens + (now_us - bucket.last_refill_us) * 1e-6 *
                                     bucket.quota.rows_per_second);
  }
  bucket.last_refill_us = now_us;
  QuotaDecision decision;
  decision.available_rows = bucket.tokens;
  decision.quota = &bucket.quota;
  decision.admitted = bucket.tokens >= double(rows);
  if (decision.admitted) bucket.tokens -= double(rows);
  return decision;
}

void ServeScheduler::enqueue(std::unique_ptr<QueuedRequest> request) {
  VQMC_REQUIRE(request != nullptr && request->rows > 0,
               "scheduler: cannot enqueue an empty request");
  request->seq = next_seq_++;
  Group& group = groups_[GroupKey{request->model, request->kind}];
  auto& lane = group.lanes[std::size_t(request->priority)];
  queued_rows_ += request->rows;
  lane.insert(std::upper_bound(lane.begin(), lane.end(), request, edf_before),
              std::move(request));
}

std::size_t ServeScheduler::take_from_lane(Group& group, Priority lane_id,
                                           BatchPlan& plan,
                                           std::size_t max_rows,
                                           bool allow_oversized) {
  auto& lane = group.lanes[std::size_t(lane_id)];
  std::size_t taken = 0;
  std::size_t consumed = 0;
  for (auto& slot : lane) {
    const bool fits = plan.rows + slot->rows <= max_rows;
    // An oversized head may open a batch alone; otherwise EDF order is
    // never bypassed — a head that does not fit blocks the lane.
    if (!fits && !(allow_oversized && plan.empty())) break;
    plan.rows += slot->rows;
    taken += slot->rows;
    plan.oldest_enqueue_us = std::min(plan.oldest_enqueue_us,
                                      slot->enqueue_us);
    plan.earliest_deadline_us =
        std::min(plan.earliest_deadline_us, slot->deadline_us);
    plan.requests.push_back(std::move(slot));
    ++consumed;
    if (plan.rows >= max_rows) break;
  }
  lane.erase(lane.begin(), lane.begin() + std::ptrdiff_t(consumed));
  queued_rows_ -= taken;
  return taken;
}

void ServeScheduler::erase_if_empty(const GroupKey& key) {
  const auto it = groups_.find(key);
  if (it != groups_.end() && it->second.empty()) groups_.erase(it);
}

BatchPlan ServeScheduler::open_batch(std::size_t max_rows) {
  BatchPlan plan;
  if (queued_rows_ == 0) return plan;

  // Weighted round-robin lane choice: positions [0, interactive_weight) of
  // the cursor cycle schedule the interactive lane, the rest the batch
  // lane.  The cursor advances on every opened batch regardless of which
  // lane actually served it, so with both lanes backlogged the batch lane
  // is guaranteed its weight share and can never be starved.
  const std::size_t cycle = config_.interactive_weight + config_.batch_weight;
  const Priority scheduled = lane_cursor_ % cycle < config_.interactive_weight
                                 ? Priority::kInteractive
                                 : Priority::kBatch;
  lane_cursor_ = (lane_cursor_ + 1) % cycle;

  // Within the chosen lane, pick the (model, kind) group whose head is most
  // urgent: earliest deadline, then earliest arrival.  Fall back to the
  // other lane when the scheduled one is empty everywhere.
  const auto pick = [this](Priority lane_id) -> Group* {
    Group* best = nullptr;
    const QueuedRequest* best_head = nullptr;
    for (auto& [key, group] : groups_) {
      const auto& lane = group.lanes[std::size_t(lane_id)];
      if (lane.empty()) continue;
      const QueuedRequest* head = lane.front().get();
      if (best_head == nullptr || head->deadline_us < best_head->deadline_us ||
          (head->deadline_us == best_head->deadline_us &&
           head->seq < best_head->seq)) {
        best = &group;
        best_head = head;
      }
    }
    return best;
  };

  Priority lane_id = scheduled;
  Group* group = pick(lane_id);
  if (group == nullptr) {
    lane_id = scheduled == Priority::kInteractive ? Priority::kBatch
                                                  : Priority::kInteractive;
    group = pick(lane_id);
  }
  if (group == nullptr) return plan;

  const QueuedRequest& head = *group->lanes[std::size_t(lane_id)].front();
  const GroupKey key{head.model, head.kind};
  plan.model = head.model;
  plan.kind = head.kind;
  take_from_lane(*group, lane_id, plan, max_rows, /*allow_oversized=*/true);
  // Batches mix tenants and lanes, never models or kinds: top the batch up
  // from the group's other lane, interactive first.
  if (plan.rows < max_rows) {
    const Priority other = lane_id == Priority::kInteractive
                               ? Priority::kBatch
                               : Priority::kInteractive;
    take_from_lane(*group, other, plan, max_rows, /*allow_oversized=*/false);
  }
  erase_if_empty(key);
  return plan;
}

std::size_t ServeScheduler::grow_batch(BatchPlan& plan, std::size_t max_rows) {
  VQMC_REQUIRE(!plan.empty(), "scheduler: cannot grow an unopened batch");
  const GroupKey key{plan.model, plan.kind};
  const auto it = groups_.find(key);
  if (it == groups_.end()) return 0;
  std::size_t added = 0;
  added += take_from_lane(it->second, Priority::kInteractive, plan, max_rows,
                          /*allow_oversized=*/false);
  added += take_from_lane(it->second, Priority::kBatch, plan, max_rows,
                          /*allow_oversized=*/false);
  erase_if_empty(key);
  return added;
}

}  // namespace vqmc::serve
