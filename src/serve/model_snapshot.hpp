#pragma once

/// \file model_snapshot.hpp
/// \brief Immutable, versioned-by-the-engine MADE snapshot prepared for
/// concurrent read-only inference (DESIGN.md §5e).
///
/// A ModelSnapshot freezes one set of MADE parameters behind a `const`
/// evaluation surface:
///
///  * **Thread safety.** Every evaluation method is `const` and uses only
///    call-local (or caller-owned) scratch, so any number of worker threads
///    can evaluate the same snapshot concurrently (the TSan-covered serve
///    concurrency test hammers one snapshot from 8 threads).
///  * **Prebuilt compute plan.** The snapshot's parameters never change, so
///    the packed masked weights are built exactly once, at construction,
///    via the model's version-counter cache (DESIGN.md §5f) and shared by
///    every request thereafter — zero materialization per request.  This
///    retains ~2x the canonical parameter footprint per pinned version
///    (~7.6 MB at n = 1000), the deliberate trade for removing what used to
///    be a ~1.9 ms fixed cost on every micro-batch.
///  * **Batching economics.** With the materialization gone, the engine's
///    batching window amortizes the remaining per-dispatch overheads
///    (queue handoff, batch assembly, the per-batch kernel-launch fixed
///    costs) and improves cache reuse of the shared packed weights across
///    coalesced rows (bench_serve_throughput measures the effect).
///
/// Numerical parity is a hard contract, not an aspiration: `log_psi` *is*
/// `Made::log_psi` (same packed kernels, same clamp), and `sample` replays
/// `FastMadeSampler`'s site-major/row-minor draw order over the same packed
/// weights, so results are bit-for-bit identical to the in-trainer paths
/// under the same seed (tests pin this).

#include <cstdint>
#include <memory>
#include <span>

#include "core/checkpoint.hpp"
#include "nn/made.hpp"
#include "rng/xoshiro.hpp"
#include "sampler/conditional_engine.hpp"
#include "serve/errors.hpp"

namespace vqmc::serve {

/// Frozen MADE weights plus the prebuilt packed masked weights; shareable
/// across threads, immutable after construction.
class ModelSnapshot {
 public:
  /// Snapshot the current parameters of a live model (deep copy).
  [[nodiscard]] static std::shared_ptr<const ModelSnapshot> from_model(
      const Made& model);

  /// Reconstruct a servable model from a training checkpoint.  Validates
  /// identity before touching any weight: the model family must be "MADE",
  /// the parameter count must factor as d = 2hn + h + n for an integral
  /// hidden width h >= 1, and the parameter vector must have exactly
  /// `num_parameters` entries.  Throws SnapshotMismatchError otherwise —
  /// a foreign checkpoint can never be silently served.
  [[nodiscard]] static std::shared_ptr<const ModelSnapshot>
  from_training_snapshot(const TrainingSnapshot& snapshot);

  [[nodiscard]] const Made& model() const { return model_; }
  [[nodiscard]] std::size_t num_spins() const { return model_.num_spins(); }
  [[nodiscard]] std::size_t hidden_size() const {
    return model_.hidden_size();
  }

  /// log |psi(x)| for each row of `batch` into `out` (length batch.rows()).
  /// Bit-identical to Made::log_psi; safe to call concurrently.
  void log_psi(const Matrix& batch, std::span<Real> out) const;

  /// Same, reusing a caller-owned (per-worker) workspace for the
  /// activation scratch.  One workspace per concurrent caller.
  void log_psi(const Matrix& batch, std::span<Real> out,
               Made::Workspace& ws) const;

  /// One coalesced request's slice of a sampling batch: rows
  /// [row_begin, row_begin + row_count) of `out`, drawn from `*gen`.
  /// Identical to (an alias of) the batched conditional engine's DrawSlice.
  using SampleSlice = DrawSlice;

  /// Exact ancestral sampling of every slice in one pass over the sites,
  /// via the shared batched conditional engine (conditional_engine.hpp).
  /// Each slice consumes its own generator in FastMadeSampler's draw order
  /// (site-major, row-minor within the slice), so a slice's rows are
  /// bit-identical to a dedicated FastMadeSampler seeded with the same
  /// stream — coalescing requests cannot change what any request receives.
  /// Non-finite conditionals are clamped to an unbiased coin; the return
  /// value counts the clamps (0 for a healthy snapshot; the uniform is
  /// consumed either way, so healthy streams are unperturbed).
  /// Safe to call concurrently: one workspace per concurrent caller, all
  /// scratch lives there — steady-state calls allocate nothing once the
  /// workspace shapes stabilize.
  std::uint64_t sample(Matrix& out, std::span<const SampleSlice> slices,
                       Made::Workspace& ws) const;

  /// Same, with call-local scratch (allocates; off the serve worker path).
  std::uint64_t sample(Matrix& out, std::span<const SampleSlice> slices) const;

  /// Convenience: fill all of `out` from a single seed.
  std::uint64_t sample(Matrix& out, std::uint64_t seed) const;

 private:
  explicit ModelSnapshot(Made model)
      : model_(std::move(model)), masked_(model_.masked()) {}

  Made model_;
  /// Packed masked weights, force-built at construction (the parameters
  /// are frozen, so this stays the model cache's sole entry forever).
  std::shared_ptr<const Made::MaskedWeights> masked_;
};

}  // namespace vqmc::serve
