#pragma once

/// \file inference_engine.hpp
/// \brief Concurrent inference engine over immutable MADE snapshots:
/// dynamic micro-batching, atomic model hot-swap and admission control
/// (DESIGN.md §5e).
///
/// The engine turns a trained model into a queryable service.  Three
/// request kinds — sample-n, log-psi evaluation and local-energy
/// measurement — enter one bounded queue; a pool of worker threads
/// coalesces same-kind requests into dynamic micro-batches under a
/// `max_batch_rows x max_wait_us` policy and fulfils them with the batched
/// kernels, one future per request.
///
/// **Hot-swap.** `publish()` installs a new immutable ModelSnapshot with a
/// single atomic pointer exchange; requests in flight keep the snapshot
/// they were dispatched against alive through shared ownership.  A batch
/// binds to exactly one published version at execution start and every
/// response carries that version, so the swap is linearizable at batch
/// granularity: no response ever mixes weights from two versions, and
/// training can keep publishing while traffic is served.
///
/// **Backpressure.** Admission is bounded by outstanding rows
/// (queued + dispatched-but-unfinished).  A request over budget is shed
/// synchronously with a typed ServeOverloadError — it is never enqueued, so
/// the accounting invariant `submitted == completed + failed` holds after
/// drain() and nothing can be dropped without being reported.  Per-request
/// deadlines fail through the future with ServeDeadlineError.
///
/// **Telemetry.** Queue-depth gauge (`serve.queue_rows`), batch-occupancy
/// histogram (`serve.batch_rows`), end-to-end latency histogram
/// (`serve.latency_seconds`, p50/p95/p99) and counters for requests,
/// responses, sheds, batches and publishes.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "hamiltonian/hamiltonian.hpp"
#include "serve/model_snapshot.hpp"

namespace vqmc::serve {

/// Engine tuning knobs.
struct ServeConfig {
  /// Worker threads fulfilling micro-batches.
  std::size_t workers = 2;
  /// Micro-batch row budget: a batch closes as soon as it holds this many
  /// rows.  1 disables coalescing (every request is its own batch).
  std::size_t max_batch_rows = 64;
  /// Batching window: a batch stays open at most this long after its oldest
  /// request arrived, waiting for co-batchable traffic.  0 dispatches
  /// immediately.  The effective wait is load-proportional: the window is
  /// consumed in slices, and a slice that elapses with no admitted growth
  /// while every outstanding row already sits in the open batch closes it —
  /// under closed-loop traffic every producer is blocked on this very
  /// batch, so idling out the rest of the window would only add latency
  /// (the serve bench exposed exactly that regression at max_batch_rows
  /// = 128, max_wait_us = 4000).
  double max_wait_us = 200;
  /// Admission bound on outstanding rows (queued + executing).  Requests
  /// beyond it are shed with ServeOverloadError.
  std::size_t max_pending_rows = 4096;
  /// Enables local-energy requests (borrowed; must outlive the engine).
  const Hamiltonian* hamiltonian = nullptr;
};

/// Response to a sample-n request.
struct SampleResult {
  Matrix samples;                   ///< count x n configurations in {0,1}
  std::uint64_t model_version = 0;  ///< snapshot version that produced them
};

/// Response to a log-psi or local-energy request (one value per input row).
struct EvalResult {
  std::vector<Real> values;
  std::uint64_t model_version = 0;
};

/// Monotone request-accounting counters.  After drain() with no traffic in
/// flight: submitted == completed + failed, and shed requests were rejected
/// synchronously (never enqueued) — so every admitted request is accounted
/// for exactly once.
struct EngineCounters {
  std::uint64_t submitted = 0;  ///< admitted into the queue
  std::uint64_t completed = 0;  ///< fulfilled with a result
  std::uint64_t failed = 0;     ///< fulfilled with an exception (deadline...)
  std::uint64_t shed = 0;       ///< rejected at admission (overload)
  std::uint64_t batches = 0;    ///< micro-batches executed
  std::uint64_t publishes = 0;  ///< snapshot versions published
  std::uint64_t max_batch_rows = 0;  ///< largest micro-batch executed (rows)
};

/// The counters as stable (name, value) pairs — the single naming authority
/// for `vqmc_serve --smoke` output and the observability exposition
/// snapshot (a test pins these names; dashboards depend on them).
[[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
counter_fields(const EngineCounters& counters);

/// Concurrent inference engine.  Thread-safe: any thread may submit or
/// publish; worker threads are owned by the engine.
class InferenceEngine {
 public:
  explicit InferenceEngine(ServeConfig config = {});
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Install `snapshot` as the current model (atomic pointer swap; requests
  /// already dispatched keep their version).  Returns the monotone version
  /// number assigned to it (first publish is version 1).  Throws
  /// SnapshotMismatchError if the spin count differs from the versions
  /// served so far — a hot-swap may retune weights, not change the problem.
  std::uint64_t publish(std::shared_ptr<const ModelSnapshot> snapshot);

  /// Convenience: snapshot a live model's current parameters and publish.
  std::uint64_t publish_model(const Made& model);

  /// Convenience: validate and publish a training checkpoint
  /// (ModelSnapshot::from_training_snapshot).
  std::uint64_t publish_checkpoint(const TrainingSnapshot& snapshot);

  /// The currently published snapshot (nullptr before the first publish).
  [[nodiscard]] std::shared_ptr<const ModelSnapshot> current_snapshot() const;
  /// Version of the currently published snapshot (0 before first publish).
  [[nodiscard]] std::uint64_t current_version() const;

  /// Draw `count` exact samples.  The request's rows are bit-identical to a
  /// FastMadeSampler over the same weights seeded with `seed`, regardless
  /// of how the engine batches it.  `timeout_us` == 0 means no deadline.
  std::future<SampleResult> submit_sample(std::size_t count,
                                          std::uint64_t seed,
                                          double timeout_us = 0);

  /// Evaluate log |psi| for each row of `configs` (entries in {0,1}).
  std::future<EvalResult> submit_log_psi(Matrix configs,
                                         double timeout_us = 0);

  /// Evaluate local energies for each row of `configs`.  Requires
  /// ServeConfig::hamiltonian.
  std::future<EvalResult> submit_local_energy(Matrix configs,
                                              double timeout_us = 0);

  /// Block until every admitted request has been fulfilled (result or
  /// exception).  New requests may still arrive while draining.
  void drain();

  /// Stop the workers from opening new micro-batches; admission continues,
  /// so the queue accumulates.  Deterministic-saturation hook for tests and
  /// operational drills (pause, let traffic pile up, resume, observe one
  /// full batch).  Batches already being assembled or executed finish
  /// normally, and shutdown() overrides a pause so the backlog drains.
  void pause();

  /// Undo pause(): workers resume harvesting the accumulated queue.
  void resume();

  /// Stop admission (further submits throw ServeShutdownError), fulfil
  /// every queued request, and join the workers.  Idempotent; also run by
  /// the destructor.
  void shutdown();

  [[nodiscard]] EngineCounters counters() const;
  [[nodiscard]] const ServeConfig& config() const { return config_; }

 private:
  enum class Kind { Sample, LogPsi, LocalEnergy };

  struct Request {
    Kind kind = Kind::Sample;
    std::size_t rows = 0;
    std::uint64_t seed = 0;  ///< Sample only
    Matrix configs;          ///< LogPsi / LocalEnergy only
    std::promise<SampleResult> sample_promise;
    std::promise<EvalResult> eval_promise;
    double enqueue_us = 0;
    double deadline_us = std::numeric_limits<double>::infinity();
  };

  /// One published version: the snapshot plus its engine-assigned version.
  struct Published {
    std::uint64_t version = 0;
    std::shared_ptr<const ModelSnapshot> snapshot;
  };

  std::future<SampleResult> enqueue_sample(std::unique_ptr<Request> request,
                                           double timeout_us);
  std::future<EvalResult> enqueue_eval(std::unique_ptr<Request> request,
                                       double timeout_us);
  void admit(std::unique_ptr<Request> request, double timeout_us);
  void worker_loop();
  void execute_batch(Kind kind,
                     std::vector<std::unique_ptr<Request>>& batch,
                     std::size_t rows, Made::Workspace& ws);
  void fail_request(Request& request, std::exception_ptr error);
  void finish_rows(std::size_t rows);

  ServeConfig config_;
  std::atomic<std::shared_ptr<const Published>> published_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   ///< workers wait for traffic
  std::condition_variable drain_cv_;  ///< drain() waits for quiescence
  std::deque<std::unique_ptr<Request>> queue_;
  std::size_t queued_rows_ = 0;   ///< rows waiting in queue_
  std::size_t pending_rows_ = 0;  ///< rows admitted but not yet fulfilled
  bool stopping_ = false;
  bool paused_ = false;  ///< workers hold off opening batches (pause())
  std::vector<std::thread> workers_;

  std::atomic<std::uint64_t> next_version_{0};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> publishes_{0};
  std::atomic<std::uint64_t> max_batch_rows_{0};
};

}  // namespace vqmc::serve
