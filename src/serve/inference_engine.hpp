#pragma once

/// \file inference_engine.hpp
/// \brief Multi-model, multi-tenant inference engine over immutable MADE
/// snapshots: model fleet, shared worker pool, dynamic micro-batching,
/// per-tenant quotas, priority lanes and deadline-aware batch formation
/// (DESIGN.md §5e, §5j).
///
/// The engine turns trained models into a queryable service.  Three request
/// kinds — sample-n, log-psi evaluation and local-energy measurement —
/// enter a multi-queue ServeScheduler keyed by (model, kind); a shared pool
/// of worker threads coalesces co-batchable requests into dynamic
/// micro-batches under a `max_batch_rows x max_wait_us` policy and fulfils
/// them with the batched kernels, one future per request.  Batches never
/// mix models or kinds; they freely mix tenants and lanes.
///
/// **Model fleet & hot-swap.** The engine hosts any number of named models
/// (ModelFleet); each is an independently hot-swappable chain of immutable
/// ModelSnapshots with its own monotone version counter and problem-size
/// pin.  `publish(name, ...)` installs a new version with a single atomic
/// pointer exchange; a batch binds to exactly one published version of its
/// model at execution start and every response carries that version, so
/// each swap is linearizable at batch granularity per model.  Legacy
/// single-model calls route to `ServeConfig::default_model`.
///
/// **Admission.** Three gates, in order, all synchronous (a rejected
/// request is never enqueued, so `submitted == completed + failed` holds
/// after drain() and nothing is dropped unreported):
///   1. global backpressure — outstanding rows (queued + executing) bounded
///      by `max_pending_rows`, rejection = ServeOverloadError naming the
///      tripped limit, current depth and tenant;
///   2. per-tenant token-bucket quotas — rejection = ServeQuotaError naming
///      the tenant and its budget (scheduler.hpp);
///   3. per-request deadlines — expiry fails through the future with
///      ServeDeadlineError *before* execution, never after wasted compute
///      (EDF ordering within each queue tries to make the deadline first,
///      and the batching window never idles past the batch's earliest
///      deadline).
///
/// **Telemetry.** Engine-wide: queue-depth gauge (`serve.queue_rows`),
/// batch-occupancy histogram (`serve.batch_rows`), end-to-end latency
/// histogram (`serve.latency_seconds`) and counters for requests,
/// responses, sheds, quota rejections, batches and publishes.  Per-model /
/// per-tenant / per-lane series use labeled families
/// (`serve.model.*{model="..."}`, `serve.tenant.*{tenant="..."}`,
/// `serve.lane.latency_seconds{lane="..."}`) that flow through the obs
/// endpoint so `vqmc_top` dashboards can watch one tenant's tail latency
/// live; `counter_fields` / `fleet_counter_fields` are the pinned naming
/// authorities.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "hamiltonian/hamiltonian.hpp"
#include "serve/model_fleet.hpp"
#include "serve/model_snapshot.hpp"
#include "serve/scheduler.hpp"

namespace vqmc::serve {

/// Engine tuning knobs.
struct ServeConfig {
  /// Worker threads fulfilling micro-batches — shared by every model.
  std::size_t workers = 2;
  /// Micro-batch row budget: a batch closes as soon as it holds this many
  /// rows.  1 disables coalescing (every request is its own batch).
  std::size_t max_batch_rows = 64;
  /// Batching window: a batch stays open at most this long after its oldest
  /// request arrived, waiting for co-batchable traffic.  0 dispatches
  /// immediately.  The effective wait is load-proportional (sliced window
  /// close, see worker_loop) and never extends past the earliest deadline
  /// in the open batch.
  double max_wait_us = 200;
  /// Admission bound on outstanding rows (queued + executing), shared
  /// across models and tenants.  Requests beyond it are shed with
  /// ServeOverloadError.
  std::size_t max_pending_rows = 4096;
  /// Enables local-energy requests (borrowed; must outlive the engine).
  const Hamiltonian* hamiltonian = nullptr;

  /// Lane pickup weights (scheduler.hpp): interactive gets
  /// `interactive_weight` of every `interactive_weight + batch_weight`
  /// batch openings when both lanes are backlogged; batch gets the rest
  /// and can never be starved.
  std::size_t interactive_weight = 7;
  std::size_t batch_weight = 1;
  /// Per-tenant token-bucket quotas.  Absent tenants are unlimited.
  std::map<std::string, TenantQuota> tenant_quotas;
  /// Model the versionless publish/submit overloads route to.
  std::string default_model = "default";
  /// Tenant attributed to requests that do not name one.
  std::string default_tenant = "anonymous";
};

/// Per-request routing options (the `{model, tenant, priority, deadline}`
/// tuple).  Empty model/tenant fall back to the ServeConfig defaults.
struct RequestOptions {
  std::string model;
  std::string tenant;
  Priority priority = Priority::kInteractive;
  /// Relative deadline in microseconds; 0 = none.
  double timeout_us = 0;
};

/// Response to a sample-n request.
struct SampleResult {
  Matrix samples;                   ///< count x n configurations in {0,1}
  std::uint64_t model_version = 0;  ///< snapshot version that produced them
};

/// Response to a log-psi or local-energy request (one value per input row).
struct EvalResult {
  std::vector<Real> values;
  std::uint64_t model_version = 0;
};

/// Monotone request-accounting counters.  After drain() with no traffic in
/// flight: submitted == completed + failed, and shed / quota-rejected
/// requests were rejected synchronously (never enqueued) — so every
/// admitted request is accounted for exactly once.
struct EngineCounters {
  std::uint64_t submitted = 0;  ///< admitted into the queue
  std::uint64_t completed = 0;  ///< fulfilled with a result
  std::uint64_t failed = 0;     ///< fulfilled with an exception (deadline...)
  std::uint64_t shed = 0;       ///< rejected at admission (overload)
  std::uint64_t quota_rejected = 0;  ///< rejected at admission (tenant quota)
  std::uint64_t batches = 0;    ///< micro-batches executed
  std::uint64_t publishes = 0;  ///< snapshot versions published (all models)
  std::uint64_t max_batch_rows = 0;  ///< largest micro-batch executed (rows)
  /// Non-finite conditionals clamped to an unbiased coin during sampling
  /// (0 for healthy models; nonzero attributes sick batches to the model).
  std::uint64_t nonfinite_draws = 0;
};

/// Per-model traffic + version accounting (one shared worker pool serves
/// every model, so these are the only place per-model load is visible).
struct ModelCounters {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t batches = 0;
  std::uint64_t publishes = 0;
  std::uint64_t version = 0;         ///< currently published version
  std::uint64_t max_batch_rows = 0;  ///< largest batch of this model (rows)
};

/// Per-tenant traffic accounting.
struct TenantCounters {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t shed = 0;            ///< overload rejections charged here
  std::uint64_t quota_rejected = 0;  ///< token-bucket rejections
};

/// The engine-wide counters as stable (name, value) pairs — the single
/// naming authority for `vqmc_serve --smoke` output and the observability
/// exposition snapshot (a test pins these names; dashboards depend on
/// them).
[[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
counter_fields(const EngineCounters& counters);

/// Labeled per-model rows: `serve.model.<field>{model="<name>"}` for
/// submitted/completed/failed/batches/publishes/version/max_batch_rows.
[[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
model_counter_fields(const std::string& model, const ModelCounters& counters);

/// Labeled per-tenant rows: `serve.tenant.<field>{tenant="<name>"}` for
/// submitted/completed/failed/shed/quota_rejected.
[[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
tenant_counter_fields(const std::string& tenant,
                      const TenantCounters& counters);

/// Concurrent inference engine.  Thread-safe: any thread may submit or
/// publish; worker threads are owned by the engine.
class InferenceEngine {
 public:
  explicit InferenceEngine(ServeConfig config = {});
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Install `snapshot` as model `model_name`'s current version (atomic
  /// pointer swap; batches already dispatched keep their version).  The
  /// model is registered on first publish.  Returns the model-scoped
  /// monotone version (first publish is version 1).  Throws
  /// SnapshotMismatchError if the spin count differs from the versions
  /// this model served so far — a hot-swap may retune weights, not change
  /// the problem (distinct models may serve distinct sizes).
  std::uint64_t publish(const std::string& model_name,
                        std::shared_ptr<const ModelSnapshot> snapshot);
  /// Legacy single-model form: publishes to ServeConfig::default_model.
  std::uint64_t publish(std::shared_ptr<const ModelSnapshot> snapshot);

  /// Convenience: snapshot a live model's current parameters and publish.
  std::uint64_t publish_model(const std::string& model_name,
                              const Made& model);
  std::uint64_t publish_model(const Made& model);

  /// Convenience: validate and publish a training checkpoint
  /// (ModelSnapshot::from_training_snapshot).
  std::uint64_t publish_checkpoint(const std::string& model_name,
                                   const TrainingSnapshot& snapshot);
  std::uint64_t publish_checkpoint(const TrainingSnapshot& snapshot);

  /// The currently published snapshot of a model (nullptr before its first
  /// publish or for an unknown name).  The versionless forms read the
  /// default model.
  [[nodiscard]] std::shared_ptr<const ModelSnapshot> current_snapshot(
      const std::string& model_name) const;
  [[nodiscard]] std::shared_ptr<const ModelSnapshot> current_snapshot() const;
  /// Version of a model's current snapshot (0 before first publish).
  [[nodiscard]] std::uint64_t current_version(
      const std::string& model_name) const;
  [[nodiscard]] std::uint64_t current_version() const;
  /// Names of every model published so far, sorted.
  [[nodiscard]] std::vector<std::string> model_names() const;

  /// Draw `count` exact samples from `options.model`.  The request's rows
  /// are bit-identical to a FastMadeSampler over the same weights seeded
  /// with `seed`, regardless of how the engine batches it.
  std::future<SampleResult> submit_sample(std::size_t count,
                                          std::uint64_t seed,
                                          const RequestOptions& options);
  /// Legacy form: default model/tenant, interactive lane.
  /// `timeout_us` == 0 means no deadline.
  std::future<SampleResult> submit_sample(std::size_t count,
                                          std::uint64_t seed,
                                          double timeout_us = 0);

  /// Evaluate log |psi| for each row of `configs` (entries in {0,1}).
  std::future<EvalResult> submit_log_psi(Matrix configs,
                                         const RequestOptions& options);
  std::future<EvalResult> submit_log_psi(Matrix configs,
                                         double timeout_us = 0);

  /// Evaluate local energies for each row of `configs`.  Requires
  /// ServeConfig::hamiltonian.
  std::future<EvalResult> submit_local_energy(Matrix configs,
                                              const RequestOptions& options);
  std::future<EvalResult> submit_local_energy(Matrix configs,
                                              double timeout_us = 0);

  /// Block until every admitted request has been fulfilled (result or
  /// exception).  New requests may still arrive while draining.
  void drain();

  /// Stop the workers from opening new micro-batches; admission continues,
  /// so the queues accumulate.  Deterministic-saturation hook for tests and
  /// operational drills (pause, let traffic pile up, resume, observe one
  /// full batch).  Batches already being assembled or executed finish
  /// normally, and shutdown() overrides a pause so the backlog drains.
  void pause();

  /// Undo pause(): workers resume harvesting the accumulated queues.
  void resume();

  /// Stop admission (further submits throw ServeShutdownError), fulfil
  /// every queued request, and join the workers.  Idempotent; also run by
  /// the destructor.
  void shutdown();

  [[nodiscard]] EngineCounters counters() const;
  /// Per-model accounting, sorted by model name.
  [[nodiscard]] std::vector<std::pair<std::string, ModelCounters>>
  model_counters() const;
  /// Per-tenant accounting, sorted by tenant id (tenants appear once they
  /// have submitted — or been rejected — at least once).
  [[nodiscard]] std::vector<std::pair<std::string, TenantCounters>>
  tenant_counters() const;
  /// Every labeled per-model and per-tenant exposition row, ready to merge
  /// into a StatusReport next to counter_fields().
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  fleet_counter_fields() const;

  [[nodiscard]] const ServeConfig& config() const { return config_; }

 private:
  enum class Kind { Sample, LogPsi, LocalEnergy };

  /// Engine-side per-model state: the fleet chain plus traffic counters.
  /// Address-stable (never erased); doubles as the scheduler's model key.
  struct ModelState {
    explicit ModelState(FleetModel& chain) : chain(&chain) {}
    FleetModel* chain;
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> failed{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> max_batch_rows{0};
    std::string batch_rows_metric;  ///< cached labeled histogram name
  };

  /// Per-tenant traffic counters.  Address-stable (never erased).
  struct TenantState {
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> failed{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> quota_rejected{0};
    std::string latency_metric;  ///< cached labeled histogram name
  };

  struct Request : QueuedRequest {
    Kind request_kind = Kind::Sample;
    std::uint64_t seed = 0;  ///< Sample only
    Matrix configs;          ///< LogPsi / LocalEnergy only
    std::promise<SampleResult> sample_promise;
    std::promise<EvalResult> eval_promise;
    ModelState* model_state = nullptr;
    TenantState* tenant_state = nullptr;
  };

  std::future<SampleResult> enqueue_sample(std::unique_ptr<Request> request,
                                           const RequestOptions& options);
  std::future<EvalResult> enqueue_eval(std::unique_ptr<Request> request,
                                       const RequestOptions& options);
  void admit(std::unique_ptr<Request> request, const RequestOptions& options);
  /// Model state by name, created on first use (registry lock only).
  ModelState& ensure_model_state(const std::string& name);
  TenantState& ensure_tenant_state(const std::string& name);
  /// Per-worker reusable batch scratch: the fused batch buffers and slice
  /// tables reach a steady shape once saturated batches fill
  /// max_batch_rows, so the execute path stops allocating between batches
  /// (the per-request response payloads are the only remaining
  /// allocations — they transfer ownership to the client).
  struct BatchScratch {
    Matrix sample_out;                              ///< fused sample output
    Matrix stacked;                                 ///< fused eval input
    std::vector<rng::Xoshiro256> gens;              ///< per-request streams
    std::vector<ModelSnapshot::SampleSlice> slices; ///< fused row ranges
    std::vector<Real> values;                       ///< fused eval output
  };

  void worker_loop();
  void execute_batch(BatchPlan& plan, Made::Workspace& ws,
                     BatchScratch& scratch);
  void fail_request(Request& request, std::exception_ptr error);
  void finish_rows(std::size_t rows);

  ServeConfig config_;
  ModelFleet fleet_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   ///< workers wait for traffic
  std::condition_variable drain_cv_;  ///< drain() waits for quiescence
  ServeScheduler scheduler_;          ///< queues; driven under mutex_
  std::size_t pending_rows_ = 0;  ///< rows admitted but not yet fulfilled
  bool stopping_ = false;
  bool paused_ = false;  ///< workers hold off opening batches (pause())
  std::vector<std::thread> workers_;

  mutable std::mutex registry_mutex_;  ///< guards the two state maps
  std::map<std::string, std::unique_ptr<ModelState>> model_states_;
  std::map<std::string, std::unique_ptr<TenantState>> tenant_states_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> quota_rejected_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> publishes_{0};
  std::atomic<std::uint64_t> max_batch_rows_{0};
  std::atomic<std::uint64_t> nonfinite_draws_{0};
};

}  // namespace vqmc::serve
