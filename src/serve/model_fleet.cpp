#include "serve/model_fleet.hpp"

#include <utility>

#include "common/error.hpp"

namespace vqmc::serve {

std::uint64_t FleetModel::publish(
    std::shared_ptr<const ModelSnapshot> snapshot) {
  VQMC_REQUIRE(snapshot != nullptr,
               "serve: cannot publish a null snapshot to model '" + name_ +
                   "'");
  std::lock_guard<std::mutex> lock(publish_mutex_);
  const auto previous = published_.load(std::memory_order_acquire);
  if (previous != nullptr &&
      previous->snapshot->num_spins() != snapshot->num_spins()) {
    throw SnapshotMismatchError(
        "serve: model '" + name_ + "' was published with " +
        std::to_string(snapshot->num_spins()) + " spins but its version " +
        std::to_string(previous->version) + " served " +
        std::to_string(previous->snapshot->num_spins()) +
        " — a hot-swap may retune weights, not change the problem size");
  }
  const std::uint64_t version = previous == nullptr ? 1 : previous->version + 1;
  published_.store(std::make_shared<const PublishedModel>(
                       PublishedModel{version, std::move(snapshot)}),
                   std::memory_order_release);
  publishes_.fetch_add(1, std::memory_order_relaxed);
  return version;
}

std::uint64_t FleetModel::current_version() const {
  const auto published = published_.load(std::memory_order_acquire);
  return published == nullptr ? 0 : published->version;
}

FleetModel& ModelFleet::ensure(const std::string& name) {
  VQMC_REQUIRE(!name.empty(), "serve: model name must not be empty");
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = models_[name];
  if (slot == nullptr) slot = std::make_unique<FleetModel>(name);
  return *slot;
}

const FleetModel* ModelFleet::find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second.get();
}

std::vector<std::string> ModelFleet::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, model] : models_) names.push_back(name);
  return names;
}

std::size_t ModelFleet::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return models_.size();
}

}  // namespace vqmc::serve
