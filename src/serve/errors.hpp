#pragma once

/// \file errors.hpp
/// \brief Typed error hierarchy of the vqmc::serve subsystem.
///
/// Callers of the inference engine need to distinguish *why* a request
/// failed: overload shedding is retryable-with-backoff, a quota rejection
/// means *this tenant* must slow down (retrying sooner than the bucket
/// refills is pointless and other tenants are unaffected), a missed
/// deadline means the caller's latency budget (not the engine) is at
/// fault, and a shutdown rejection is terminal.  Snapshot-interop failures
/// (loading a checkpoint written for a different architecture) get their
/// own type so a serving process can refuse a bad model push without
/// tearing down.
///
/// Rejection messages are actionable by contract: overload reports the
/// tripped limit, the current depth and the tenant; quota rejections
/// report the tenant, its rate/burst budget and the rows available.  A
/// test pins those fields — an operator reading a client-side error log
/// must be able to tell *which* knob to turn.

#include "common/error.hpp"

namespace vqmc::serve {

/// Base class for every serve-layer failure.
class ServeError : public Error {
 public:
  explicit ServeError(const std::string& what) : Error(what) {}
};

/// Admission control rejected the request because the engine's bounded
/// backlog (ServeConfig::max_pending_rows) is full.  Thrown synchronously
/// from submit_* — a shed request is never enqueued, so its future never
/// existed and nothing is silently dropped.
class ServeOverloadError : public ServeError {
 public:
  explicit ServeOverloadError(const std::string& what) : ServeError(what) {}
};

/// Admission control rejected the request because the *tenant's*
/// token-bucket quota (SchedulerConfig::tenant_quotas) is exhausted —
/// distinct from ServeOverloadError: the engine has capacity, this tenant
/// has spent its budget.  Thrown synchronously from submit_*; nothing is
/// enqueued and no tokens are consumed.
class ServeQuotaError : public ServeError {
 public:
  explicit ServeQuotaError(const std::string& what) : ServeError(what) {}
};

/// The engine is shutting down (or already shut down) and no longer admits
/// requests.
class ServeShutdownError : public ServeError {
 public:
  explicit ServeShutdownError(const std::string& what) : ServeError(what) {}
};

/// The request's deadline expired before a worker could execute it.  The
/// failure is reported through the request's future.
class ServeDeadlineError : public ServeError {
 public:
  explicit ServeDeadlineError(const std::string& what) : ServeError(what) {}
};

/// A TrainingSnapshot (or live model) cannot be served: wrong model family,
/// inconsistent spin/parameter counts, or an architecture switch relative to
/// the versions already published.
class SnapshotMismatchError : public ServeError {
 public:
  explicit SnapshotMismatchError(const std::string& what) : ServeError(what) {}
};

}  // namespace vqmc::serve
