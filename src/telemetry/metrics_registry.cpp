#include "telemetry/metrics_registry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace vqmc::telemetry {

int Histogram::bucket_index(double value) {
  if (!(value > 0)) return 0;
  const double octaves = std::log2(value) - double(kMinExponent);
  const int index = int(std::floor(octaves * kSubBuckets));
  return std::clamp(index, 0, kNumBuckets - 1);
}

double Histogram::bucket_lower_bound(int index) {
  return std::exp2(double(kMinExponent) + double(index) / kSubBuckets);
}

double Histogram::bucket_upper_bound(int index) {
  return std::exp2(double(kMinExponent) + double(index + 1) / kSubBuckets);
}

namespace {

/// Shared quantile walk over bucket counts (live histogram and snapshot use
/// the same estimator, so merged snapshots agree with live reads).
template <typename BucketAt>
double percentile_from_buckets(std::uint64_t count, double p,
                               BucketAt bucket_at) {
  if (count == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * double(count);
  double cumulative = 0;
  for (int b = 0; b < Histogram::kNumBuckets; ++b) {
    const double in_bucket = double(bucket_at(b));
    if (in_bucket <= 0) continue;
    if (cumulative + in_bucket >= target) {
      const double fraction =
          std::clamp((target - cumulative) / in_bucket, 0.0, 1.0);
      const double lo = Histogram::bucket_lower_bound(b);
      const double hi = Histogram::bucket_upper_bound(b);
      return lo + (hi - lo) * fraction;
    }
    cumulative += in_bucket;
  }
  return Histogram::bucket_upper_bound(Histogram::kNumBuckets - 1);
}

void emit_json_escaped(std::ostringstream& oss, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': oss << "\\\""; break;
      case '\\': oss << "\\\\"; break;
      case '\n': oss << "\\n"; break;
      case '\r': oss << "\\r"; break;
      case '\t': oss << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          oss << buf;
        } else {
          oss << c;
        }
    }
  }
}

}  // namespace

double Histogram::percentile(double p) const {
  return percentile_from_buckets(count(), p,
                                 [this](int b) { return bucket(b); });
}

double HistogramSnapshot::percentile(double p) const {
  return percentile_from_buckets(
      count, p, [this](int b) { return buckets[std::size_t(b)]; });
}

void HistogramSnapshot::refresh_percentiles() {
  p50 = percentile(0.50);
  p95 = percentile(0.95);
  p99 = percentile(0.99);
}

std::vector<Real> MetricsSnapshot::pack_additive() const {
  std::vector<Real> payload;
  payload.reserve(counters.size() +
                  histograms.size() * (2 + Histogram::kNumBuckets));
  for (const CounterSnapshot& c : counters) payload.push_back(Real(c.value));
  for (const HistogramSnapshot& h : histograms) {
    payload.push_back(Real(h.count));
    payload.push_back(Real(h.sum));
    for (const std::uint64_t b : h.buckets) payload.push_back(Real(b));
  }
  return payload;
}

void MetricsSnapshot::apply_summed(const std::vector<Real>& payload) {
  const std::size_t expected =
      counters.size() + histograms.size() * (2 + Histogram::kNumBuckets);
  VQMC_REQUIRE(payload.size() == expected,
               "metrics merge: payload size mismatch (ranks created "
               "different instrument sets)");
  std::size_t pos = 0;
  for (CounterSnapshot& c : counters)
    c.value = std::uint64_t(std::llround(payload[pos++]));
  for (HistogramSnapshot& h : histograms) {
    h.count = std::uint64_t(std::llround(payload[pos++]));
    h.sum = double(payload[pos++]);
    for (std::uint64_t& b : h.buckets)
      b = std::uint64_t(std::llround(payload[pos++]));
    h.refresh_percentiles();
  }
}

std::vector<Real> MetricsSnapshot::pack_gauges() const {
  std::vector<Real> payload;
  payload.reserve(gauges.size());
  for (const GaugeSnapshot& g : gauges) payload.push_back(Real(g.value));
  return payload;
}

void MetricsSnapshot::apply_gauge_max(const std::vector<Real>& payload) {
  VQMC_REQUIRE(payload.size() == gauges.size(),
               "gauge merge: payload size mismatch (ranks created "
               "different gauge sets)");
  for (std::size_t i = 0; i < gauges.size(); ++i)
    gauges[i].value = double(payload[i]);
}

void MetricsSnapshot::merge_from(const MetricsSnapshot& other,
                                 GaugeMerge gauge_merge) {
  VQMC_REQUIRE(other.counters.size() == counters.size() &&
                   other.gauges.size() == gauges.size() &&
                   other.histograms.size() == histograms.size(),
               "metrics merge: snapshots hold different instrument sets");
  for (std::size_t i = 0; i < counters.size(); ++i) {
    VQMC_REQUIRE(counters[i].name == other.counters[i].name,
                 "metrics merge: counter name mismatch");
    counters[i].value += other.counters[i].value;
  }
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    VQMC_REQUIRE(gauges[i].name == other.gauges[i].name,
                 "metrics merge: gauge name mismatch");
    switch (gauge_merge) {
      case GaugeMerge::kLastWrite:
        gauges[i].value = other.gauges[i].value;
        break;
      case GaugeMerge::kMax:
        gauges[i].value = std::max(gauges[i].value, other.gauges[i].value);
        break;
    }
  }
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    HistogramSnapshot& h = histograms[i];
    const HistogramSnapshot& o = other.histograms[i];
    VQMC_REQUIRE(h.name == o.name && h.buckets.size() == o.buckets.size(),
                 "metrics merge: histogram mismatch");
    h.count += o.count;
    h.sum += o.sum;
    for (std::size_t b = 0; b < h.buckets.size(); ++b)
      h.buckets[b] += o.buckets[b];
    h.refresh_percentiles();
  }
}

const CounterSnapshot* MetricsSnapshot::find_counter(
    std::string_view name) const {
  for (const CounterSnapshot& c : counters)
    if (c.name == name) return &c;
  return nullptr;
}

const GaugeSnapshot* MetricsSnapshot::find_gauge(std::string_view name) const {
  for (const GaugeSnapshot& g : gauges)
    if (g.name == name) return &g;
  return nullptr;
}

const HistogramSnapshot* MetricsSnapshot::find_histogram(
    std::string_view name) const {
  for (const HistogramSnapshot& h : histograms)
    if (h.name == name) return &h;
  return nullptr;
}

std::string sanitize_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == ':' || c == '-';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string labeled_name(
    const std::string& base,
    const std::vector<std::pair<std::string, std::string>>& labels) {
  if (labels.empty()) return base;
  std::string out = base;
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    out += sanitize_label_value(value);
    out += '"';
  }
  out += '}';
  return out;
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream oss;
  oss.precision(17);
  oss << "{\"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i) oss << ", ";
    oss << '"';
    emit_json_escaped(oss, counters[i].name);
    oss << "\": " << counters[i].value;
  }
  oss << "}, \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    if (i) oss << ", ";
    oss << '"';
    emit_json_escaped(oss, gauges[i].name);
    oss << "\": " << gauges[i].value;
  }
  oss << "}, \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    if (i) oss << ", ";
    oss << '"';
    emit_json_escaped(oss, h.name);
    oss << "\": {\"count\": " << h.count << ", \"sum\": " << h.sum
        << ", \"mean\": " << h.mean() << ", \"p50\": " << h.p50
        << ", \"p95\": " << h.p95 << ", \"p99\": " << h.p99 << "}";
  }
  oss << "}}";
  return oss.str();
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_)
    snap.counters.push_back({name, c->value()});
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_)
    snap.gauges.push_back({name, g->value()});
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.count = h->count();
    hs.sum = h->sum();
    hs.buckets.resize(std::size_t(Histogram::kNumBuckets));
    for (int b = 0; b < Histogram::kNumBuckets; ++b)
      hs.buckets[std::size_t(b)] = h->bucket(b);
    hs.refresh_percentiles();
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

void MetricsRegistry::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

namespace {
thread_local MetricsRegistry* t_current_registry = nullptr;
}  // namespace

MetricsRegistry& metrics() {
  return t_current_registry != nullptr ? *t_current_registry
                                       : MetricsRegistry::global();
}

ScopedMetricsRegistry::ScopedMetricsRegistry(MetricsRegistry& registry)
    : previous_(t_current_registry) {
  t_current_registry = &registry;
}

ScopedMetricsRegistry::~ScopedMetricsRegistry() {
  t_current_registry = previous_;
}

}  // namespace vqmc::telemetry
