#include "telemetry/jsonl.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <mutex>
#include <sstream>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "telemetry/telemetry.hpp"

namespace vqmc::telemetry {

namespace {

std::atomic<bool> g_active{false};
std::mutex g_mutex;
std::ofstream g_out;

void emit_escaped(std::ostringstream& oss, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': oss << "\\\""; break;
      case '\\': oss << "\\\\"; break;
      case '\n': oss << "\\n"; break;
      case '\r': oss << "\\r"; break;
      case '\t': oss << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          oss << buf;
        } else {
          oss << c;
        }
    }
  }
}

void emit_value(std::ostringstream& oss, const JsonField& field) {
  switch (field.kind) {
    case JsonField::Kind::Null:
      oss << "null";
      break;
    case JsonField::Kind::Bool:
      oss << (field.int_value != 0 ? "true" : "false");
      break;
    case JsonField::Kind::Int:
      oss << field.int_value;
      break;
    case JsonField::Kind::Double:
      // JSON has no NaN/inf literals.
      if (std::isfinite(field.double_value)) {
        oss.precision(std::numeric_limits<double>::max_digits10);
        oss << field.double_value;
      } else {
        oss << "null";
      }
      break;
    case JsonField::Kind::String:
      oss << '"';
      emit_escaped(oss, field.string_value);
      oss << '"';
      break;
  }
}

const char* level_label(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}

}  // namespace

std::string format_jsonl_line(std::string_view event_name,
                              std::initializer_list<JsonField> fields) {
  std::ostringstream oss;
  oss << "{\"ts\": \"" << iso8601_utc_timestamp() << "\", \"event\": \"";
  emit_escaped(oss, event_name);
  oss << "\", \"rank\": " << log_rank()
      << ", \"iteration\": " << iteration();
  for (const JsonField& field : fields) {
    oss << ", \"";
    emit_escaped(oss, field.key);
    oss << "\": ";
    emit_value(oss, field);
  }
  oss << "}";
  return oss.str();
}

JsonlLogger& JsonlLogger::instance() {
  static JsonlLogger logger;
  return logger;
}

void JsonlLogger::open(const std::string& path) {
  {
    const std::lock_guard<std::mutex> lock(g_mutex);
    if (g_out.is_open()) g_out.close();
    g_out.open(path, std::ios::binary | std::ios::trunc);
    VQMC_REQUIRE(g_out.good(),
                 "jsonl: cannot open '" + path + "' for writing");
    g_active.store(true, std::memory_order_release);
  }
  // Mirror human-readable log lines as structured events (the bridge reads
  // rank/iteration context from the emitting thread, so attribution is
  // preserved).
  set_log_sink([](LogLevel level, const std::string& message) {
    JsonlLogger::instance().event(
        "log", {{"level", level_label(level)}, {"message", message}});
  });
}

void JsonlLogger::close() {
  set_log_sink(nullptr);
  const std::lock_guard<std::mutex> lock(g_mutex);
  g_active.store(false, std::memory_order_release);
  if (g_out.is_open()) {
    g_out.flush();
    g_out.close();
  }
}

bool JsonlLogger::active() const {
  return g_active.load(std::memory_order_acquire);
}

void JsonlLogger::event(std::string_view event_name,
                        std::initializer_list<JsonField> fields) {
  if (!active()) return;
  const std::string line = format_jsonl_line(event_name, fields);
  const std::lock_guard<std::mutex> lock(g_mutex);
  if (!g_out.is_open()) return;
  g_out << line << "\n";
}

void jsonl_event(std::string_view event_name,
                 std::initializer_list<JsonField> fields) {
  JsonlLogger::instance().event(event_name, fields);
}

}  // namespace vqmc::telemetry
