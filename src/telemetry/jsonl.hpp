#pragma once

/// \file jsonl.hpp
/// \brief Structured JSONL event logging (DESIGN.md §5d).
///
/// One JSON object per line, each carrying the shared context
/// (ISO-8601 UTC timestamp, rank, training iteration) plus event-specific
/// fields:
///
///   {"ts":"2026-08-05T12:00:00.123Z","event":"shrink","rank":0,
///    "iteration":41,"dead_rank":2,"live_after":3}
///
/// Opening the sink (the `--log-json` flag) also installs a logging bridge:
/// every `log_message` above the level threshold is mirrored as an
/// {"event":"log","level":...,"message":...} line, so ad-hoc stderr lines
/// from the trainer and distributed trainer become machine-parseable
/// without touching their call sites.
///
/// Inactive cost: one atomic load per `jsonl_event` call.

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <type_traits>

namespace vqmc::telemetry {

/// One key/value pair of a JSONL event. Implicit constructors let call
/// sites write `{"dead_rank", rank}` for strings, integers, doubles and
/// bools.
struct JsonField {
  enum class Kind { Null, Bool, Int, Double, String };

  JsonField(std::string key, std::nullptr_t)
      : key(std::move(key)), kind(Kind::Null) {}
  JsonField(std::string key, bool value)
      : key(std::move(key)), kind(Kind::Bool), int_value(value ? 1 : 0) {}
  // One constrained template instead of per-width overloads: on LP64
  // platforms size_t and uint64_t are the same type, so spelling them out
  // as separate constructors would not compile.
  template <class T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  JsonField(std::string key, T value)
      : key(std::move(key)),
        kind(Kind::Int),
        int_value(std::int64_t(value)) {}
  JsonField(std::string key, double value)
      : key(std::move(key)), kind(Kind::Double), double_value(value) {}
  JsonField(std::string key, std::string value)
      : key(std::move(key)),
        kind(Kind::String),
        string_value(std::move(value)) {}
  JsonField(std::string key, const char* value)
      : key(std::move(key)), kind(Kind::String), string_value(value) {}

  std::string key;
  Kind kind = Kind::Null;
  std::int64_t int_value = 0;
  double double_value = 0;
  std::string string_value;
};

/// Process-global JSONL sink.
class JsonlLogger {
 public:
  static JsonlLogger& instance();

  /// Open (truncate) `path` and start accepting events; installs the
  /// log_message bridge. Throws vqmc::Error on I/O failure.
  void open(const std::string& path);

  /// Flush, close and uninstall the bridge. Safe when already closed.
  void close();

  [[nodiscard]] bool active() const;

  /// Emit one event line (no-op while closed). Thread-safe.
  void event(std::string_view event_name,
             std::initializer_list<JsonField> fields = {});

 private:
  JsonlLogger() = default;
};

/// Convenience forwarder: JsonlLogger::instance().event(...).
void jsonl_event(std::string_view event_name,
                 std::initializer_list<JsonField> fields = {});

/// Serialize one event line without the sink (exposed for tests).
[[nodiscard]] std::string format_jsonl_line(
    std::string_view event_name, std::initializer_list<JsonField> fields);

}  // namespace vqmc::telemetry
