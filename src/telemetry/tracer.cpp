#include "telemetry/tracer.hpp"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/logging.hpp"

namespace vqmc::telemetry {

namespace {

std::atomic<std::uint32_t> g_next_thread_id{0};
thread_local std::uint16_t t_span_depth = 0;

}  // namespace

/// Per-thread drop-oldest ring. The owning thread is the only writer;
/// snapshot/export readers synchronize through the per-buffer mutex (the
/// owner holds it only for one event copy, so contention is negligible).
struct Tracer::ThreadBuffer {
  mutable std::mutex mutex;
  std::vector<TraceEvent> ring;
  std::size_t next = 0;   ///< next write slot
  std::size_t count = 0;  ///< events held (<= ring.size())
  std::uint64_t dropped = 0;
  std::uint32_t thread_id = 0;
};

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  struct LocalRef {
    ThreadBuffer* buffer = nullptr;
    std::uint64_t generation = 0;
  };
  thread_local LocalRef ref;
  // clear()/start() invalidate previously cached buffers (they were
  // destroyed); the generation check re-registers lazily.
  std::uint64_t generation;
  {
    const std::lock_guard<std::mutex> lock(registry_mutex_);
    generation = generation_;
    if (ref.buffer != nullptr && ref.generation == generation)
      return *ref.buffer;
    auto buffer = std::make_unique<ThreadBuffer>();
    buffer->ring.resize(capacity_.load(std::memory_order_relaxed));
    buffer->thread_id =
        g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
    ref.buffer = buffer.get();
    ref.generation = generation;
    buffers_.push_back(std::move(buffer));
    return *ref.buffer;
  }
}

void Tracer::start(std::size_t events_per_thread) {
  VQMC_REQUIRE(events_per_thread >= 1,
               "tracer: ring capacity must be >= 1 event");
  clear();
  capacity_.store(events_per_thread, std::memory_order_relaxed);
  active_.store(true, std::memory_order_release);
}

void Tracer::stop() { active_.store(false, std::memory_order_release); }

void Tracer::record(const char* name, double ts_us, double dur_us,
                    std::uint16_t depth) {
  ThreadBuffer& buffer = local_buffer();
  TraceEvent event;
  event.name = name;
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.rank = log_rank();
  event.thread_id = buffer.thread_id;
  event.depth = depth;
  event.iteration = iteration();
  const std::lock_guard<std::mutex> lock(buffer.mutex);
  if (buffer.count == buffer.ring.size()) ++buffer.dropped;
  buffer.ring[buffer.next] = event;
  buffer.next = (buffer.next + 1) % buffer.ring.size();
  buffer.count = std::min(buffer.count + 1, buffer.ring.size());
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> all;
  {
    const std::lock_guard<std::mutex> registry_lock(registry_mutex_);
    for (const std::unique_ptr<ThreadBuffer>& buffer : buffers_) {
      const std::lock_guard<std::mutex> lock(buffer->mutex);
      const std::size_t size = buffer->ring.size();
      // Oldest-first: when full, the oldest event sits at `next`.
      const std::size_t first =
          buffer->count == size ? buffer->next : 0;
      for (std::size_t i = 0; i < buffer->count; ++i)
        all.push_back(buffer->ring[(first + i) % size]);
    }
  }
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              return a.dur_us > b.dur_us;  // parents before children
            });
  return all;
}

std::uint64_t Tracer::dropped() const {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  std::uint64_t total = 0;
  for (const std::unique_ptr<ThreadBuffer>& buffer : buffers_) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    total += buffer->dropped;
  }
  return total;
}

std::string Tracer::to_chrome_json() const {
  const std::vector<TraceEvent> all = events();

  // Rank attribution: ranks map to tids directly; rankless threads (serial
  // trainer, benches) get tids above any plausible rank count.
  const auto chrome_tid = [](const TraceEvent& e) -> std::int64_t {
    return e.rank >= 0 ? e.rank : 100000 + std::int64_t(e.thread_id);
  };

  std::ostringstream oss;
  oss.precision(3);
  oss << std::fixed;
  oss << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  // Thread-name metadata so Perfetto labels each timeline by rank.
  std::vector<std::int64_t> seen_tids;
  for (const TraceEvent& e : all) {
    const std::int64_t tid = chrome_tid(e);
    if (std::find(seen_tids.begin(), seen_tids.end(), tid) !=
        seen_tids.end())
      continue;
    seen_tids.push_back(tid);
    if (!first) oss << ",";
    first = false;
    oss << "\n  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
           "\"tid\": "
        << tid << ", \"args\": {\"name\": \""
        << (e.rank >= 0 ? "rank " + std::to_string(e.rank)
                        : "thread " + std::to_string(e.thread_id))
        << "\"}}";
  }
  for (const TraceEvent& e : all) {
    if (!first) oss << ",";
    first = false;
    oss << "\n  {\"name\": \"" << e.name
        << "\", \"cat\": \"vqmc\", \"ph\": \"X\", \"ts\": " << e.ts_us
        << ", \"dur\": " << e.dur_us << ", \"pid\": 0, \"tid\": "
        << chrome_tid(e) << ", \"args\": {\"rank\": " << e.rank
        << ", \"iteration\": " << e.iteration << ", \"depth\": " << e.depth
        << "}}";
  }
  oss << "\n]}\n";
  return oss.str();
}

void Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  VQMC_REQUIRE(out.good(),
               "tracer: cannot open '" + path + "' for writing");
  out << to_chrome_json();
  VQMC_REQUIRE(out.good(), "tracer: write to '" + path + "' failed");
}

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  buffers_.clear();
  ++generation_;
}

Span::Span(const char* name) : name_(name) {
  // Both gates are one relaxed atomic load; the runtime master switch
  // (--telemetry-off) silences spans even while a tracer is collecting.
  if (!enabled() || !Tracer::instance().active()) return;
  live_ = true;
  depth_ = t_span_depth++;
  start_us_ = now_us();
}

Span::~Span() { end(); }

void Span::end() {
  if (!live_) return;
  live_ = false;
  --t_span_depth;
  Tracer::instance().record(name_, start_us_, now_us() - start_us_, depth_);
}

}  // namespace vqmc::telemetry
