#include "telemetry/telemetry.hpp"

#include <atomic>
#include <chrono>

namespace vqmc::telemetry {

namespace {

std::atomic<bool> g_enabled{true};
thread_local std::int64_t t_iteration = -1;

using Clock = std::chrono::steady_clock;

Clock::time_point process_epoch() {
  // Initialized on first use; thread-safe per the C++ static-init rules.
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

// Touch the epoch at static-init time so the first traced span does not pay
// for (or race on) the lazy initialization.
const Clock::time_point g_epoch_init = process_epoch();

}  // namespace

#if VQMC_TELEMETRY_COMPILED
bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}
#endif

void set_iteration(std::int64_t iteration) { t_iteration = iteration; }

std::int64_t iteration() { return t_iteration; }

double now_us() {
  return std::chrono::duration<double, std::micro>(Clock::now() -
                                                   process_epoch())
      .count();
}

}  // namespace vqmc::telemetry
