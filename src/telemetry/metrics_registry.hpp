#pragma once

/// \file metrics_registry.hpp
/// \brief Lock-cheap registry of named counters, gauges and log-scale
/// latency histograms (DESIGN.md §5d).
///
/// Instruments are created on first lookup and live as long as their
/// registry; updates are single relaxed atomics (plus one master-switch
/// load), so the hot path never blocks.  The registry itself takes a mutex
/// only around name lookup/creation — call sites on per-batch (not
/// per-sample) granularity, so the map find is noise.
///
/// Per-rank scoping: `metrics()` resolves to a thread-local current registry
/// that defaults to the process-global one.  A distributed rank thread
/// installs its own registry with ScopedMetricsRegistry, so instrument names
/// never need rank prefixes and merging across ranks is one allreduce over
/// the packed additive state (`MetricsSnapshot::pack_additive`).
///
/// Histograms are log-scale (4 sub-buckets per factor of two, spanning
/// ~1 ns to ~3 days when values are seconds), so p50/p95/p99 come back with
/// relative error bounded by the bucket width, 2^(1/4) - 1 ~ 19%, at
/// 192 * 8 bytes per histogram.

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "telemetry/telemetry.hpp"
#include "tensor/real.hpp"

namespace vqmc::telemetry {

/// Monotone event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (enabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value-wins instantaneous measurement.
class Gauge {
 public:
  void set(double v) {
    if (enabled()) value_.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0};
};

/// Log-scale histogram with quantile estimation.
///
/// Bucket b covers [2^(kMinExponent + b/kSubBuckets),
/// 2^(kMinExponent + (b+1)/kSubBuckets)); values at or below zero and
/// underflows land in bucket 0, overflows in the last bucket.
class Histogram {
 public:
  static constexpr int kSubBuckets = 4;     ///< buckets per factor of two
  static constexpr int kMinExponent = -30;  ///< 2^-30 s ~ 0.93 ns
  static constexpr int kNumBuckets = 192;   ///< 48 octaves ~ up to 2.6e5 s

  void observe(double value) {
    if (!enabled()) return;
    buckets_[std::size_t(bucket_index(value))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(int index) const {
    return buckets_[std::size_t(index)].load(std::memory_order_relaxed);
  }

  /// Quantile estimate for p in [0, 1] (0 when empty). Linear interpolation
  /// inside the winning bucket bounds the relative error by the bucket
  /// width (2^(1/4) - 1 ~ 19%).
  [[nodiscard]] double percentile(double p) const;

  [[nodiscard]] static int bucket_index(double value);
  [[nodiscard]] static double bucket_lower_bound(int index);
  [[nodiscard]] static double bucket_upper_bound(int index);

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

/// Build a labeled metric name: `base{key="value",...}`.  The label body
/// is carried inside the registry name (names stay single tokens for the
/// status-report wire encoding); the Prometheus renderer in vqmc::obs
/// splits it back out and merges it with the `rank` label, so per-tenant /
/// per-model serve series land in one labeled family instead of one
/// family per tenant.  Values are sanitized to `[A-Za-z0-9_.:-]` (quotes,
/// commas and braces can never corrupt the label grammar); keys are
/// caller-controlled literals and used verbatim.
[[nodiscard]] std::string labeled_name(
    const std::string& base,
    const std::vector<std::pair<std::string, std::string>>& labels);

/// The value-sanitization rule of labeled_name, exposed for callers that
/// need the cleaned label value itself (e.g. to echo it in a report).
[[nodiscard]] std::string sanitize_label_value(const std::string& value);

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  double value = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0;
  std::vector<std::uint64_t> buckets;  ///< length Histogram::kNumBuckets
  double p50 = 0, p95 = 0, p99 = 0;

  [[nodiscard]] double mean() const {
    return count == 0 ? 0 : sum / double(count);
  }
  /// Recompute a quantile from the (possibly merged) bucket counts.
  [[nodiscard]] double percentile(double p) const;
  /// Refresh p50/p95/p99 from the bucket counts (after a merge).
  void refresh_percentiles();
};

/// How gauges combine across ranks. Counters and histograms are additive;
/// gauges are instantaneous readings where a sum is meaningless (summing
/// `serve.queue_depth` over ranks invents load nobody measured).
enum class GaugeMerge {
  kLastWrite,  ///< keep the other snapshot's value (most recent observation)
  kMax,        ///< keep the elementwise maximum (high-water semantics)
};

/// Point-in-time copy of one registry, additive across ranks.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;      ///< sorted by name
  std::vector<GaugeSnapshot> gauges;          ///< sorted by name
  std::vector<HistogramSnapshot> histograms;  ///< sorted by name

  /// Flatten the additive state (counter values; histogram count, sum and
  /// buckets — gauges are per-rank and excluded) into a Real vector whose
  /// layout is a pure function of the instrument names.  Ranks that created
  /// the same instruments (they run the same code) produce layout-identical
  /// payloads, so an allreduce_sum over the payload *is* the cross-rank
  /// merge.  Counts are exact in a double up to 2^53.
  [[nodiscard]] std::vector<Real> pack_additive() const;

  /// Replace the additive state with a summed payload (inverse of
  /// pack_additive after the allreduce) and refresh the percentiles.
  void apply_summed(const std::vector<Real>& payload);

  /// Gauge values in name order (the gauge analogue of pack_additive).
  /// Layout-identical across ranks that created the same instruments, so an
  /// allreduce_max over the payload is a cross-rank kMax gauge merge.
  [[nodiscard]] std::vector<Real> pack_gauges() const;

  /// Replace gauge values with an allreduce_max'd pack_gauges payload.
  void apply_gauge_max(const std::vector<Real>& payload);

  /// In-process cross-snapshot merge: counters and histogram state add,
  /// gauges combine per `gauge_merge`. Both snapshots must hold the same
  /// instrument sets (ranks run the same code). Refreshes percentiles.
  void merge_from(const MetricsSnapshot& other, GaugeMerge gauge_merge);

  [[nodiscard]] const CounterSnapshot* find_counter(
      std::string_view name) const;
  [[nodiscard]] const GaugeSnapshot* find_gauge(std::string_view name) const;
  [[nodiscard]] const HistogramSnapshot* find_histogram(
      std::string_view name) const;

  /// Human/machine-readable dump: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, mean, p50, p95, p99}}}.
  [[nodiscard]] std::string to_json() const;
};

/// Named-instrument registry. Instruments are stable references: once
/// returned, a Counter&/Gauge&/Histogram& stays valid for the registry's
/// lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Drop every instrument (references obtained earlier become dangling;
  /// intended for test isolation, not steady-state use).
  void clear();

  /// The process-global registry (serial trainers, benches, CLI tools).
  static MetricsRegistry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The calling thread's current registry (global() unless a
/// ScopedMetricsRegistry is installed).
[[nodiscard]] MetricsRegistry& metrics();

/// RAII: route this thread's `metrics()` to `registry` (per-rank scoping in
/// train_distributed).
class ScopedMetricsRegistry {
 public:
  explicit ScopedMetricsRegistry(MetricsRegistry& registry);
  ~ScopedMetricsRegistry();
  ScopedMetricsRegistry(const ScopedMetricsRegistry&) = delete;
  ScopedMetricsRegistry& operator=(const ScopedMetricsRegistry&) = delete;

 private:
  MetricsRegistry* previous_;
};

}  // namespace vqmc::telemetry
