#pragma once

/// \file telemetry.hpp
/// \brief Master switch and per-thread attribution context for the
/// vqmc::telemetry subsystem (DESIGN.md §5d).
///
/// The subsystem has three layers, each independently cheap to leave off:
///  * MetricsRegistry (metrics_registry.hpp) — named counters / gauges /
///    log-scale latency histograms, snapshotable per rank and mergeable
///    across ranks through one allreduce;
///  * Tracer (tracer.hpp) — span-based phase tracing with Chrome-trace
///    export (`TELEMETRY_SPAN("sample")`);
///  * JsonlLogger (jsonl.hpp) — structured JSONL event logging.
///
/// Overhead discipline:
///  * Compile-out: building with `VQMC_TELEMETRY_COMPILED=0` (CMake option
///    `-DVQMC_TELEMETRY=OFF`) turns `enabled()` into `constexpr false` and
///    `TELEMETRY_SPAN` into nothing, so every instrumentation site is dead
///    code the optimizer deletes.
///  * Runtime: `set_enabled(false)` (the `--telemetry-off` flag) reduces
///    every metric update to one relaxed atomic load, and spans to one
///    relaxed load of the tracer-active flag; neither allocates.
///
/// Rank attribution rides on the logging layer's thread-local rank
/// (`vqmc::set_log_rank`), so log lines, spans and JSONL events all agree on
/// which rank a thread is acting as.

#include <cstdint>

#ifndef VQMC_TELEMETRY_COMPILED
#define VQMC_TELEMETRY_COMPILED 1
#endif

namespace vqmc::telemetry {

#if VQMC_TELEMETRY_COMPILED
/// Process-wide master switch (default on). When off, counters, gauges,
/// histograms and spans are no-ops.
[[nodiscard]] bool enabled();
void set_enabled(bool on);
#else
[[nodiscard]] constexpr bool enabled() { return false; }
inline void set_enabled(bool) {}
#endif

/// Thread-local training-iteration context: spans and JSONL events recorded
/// by this thread carry the value (-1 = outside any iteration).
void set_iteration(std::int64_t iteration);
[[nodiscard]] std::int64_t iteration();

/// Microseconds since a process-global steady-clock epoch. Monotone and
/// shared by every thread, so trace timestamps from different ranks are
/// directly comparable.
[[nodiscard]] double now_us();

}  // namespace vqmc::telemetry
