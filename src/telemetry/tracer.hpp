#pragma once

/// \file tracer.hpp
/// \brief Span-based phase tracer with Chrome-trace export (DESIGN.md §5d).
///
/// `TELEMETRY_SPAN("sample")` opens an RAII scope; when the tracer is
/// active, closing the scope records one complete event (name, start,
/// duration, rank, thread, nesting depth, training iteration) into the
/// calling thread's ring buffer.  Buffers are fixed-capacity and
/// drop-oldest, so a run can never grow without bound; drops are counted.
///
/// Export is `chrome://tracing` / Perfetto JSON (`write_chrome_trace`):
/// events are sorted by start time (monotone `ts`), ranks map to `tid`, so
/// a 4-rank run shows four aligned timelines whose gaps are the allreduce
/// waits.
///
/// Cost model: an inactive span is one relaxed atomic load (no clock read,
/// no allocation — the disabled-mode zero-allocation test pins this).  An
/// active span is two steady-clock reads plus a push into a per-thread ring
/// under that thread's (uncontended) mutex.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace vqmc::telemetry {

/// One closed span.
struct TraceEvent {
  const char* name = "";        ///< static string (macro literal)
  double ts_us = 0;             ///< start, microseconds since process epoch
  double dur_us = 0;            ///< duration, microseconds
  int rank = -1;                ///< vqmc::log_rank() at record time
  std::uint32_t thread_id = 0;  ///< sequential id of the recording thread
  std::uint16_t depth = 0;      ///< span nesting depth (0 = outermost)
  std::int64_t iteration = -1;  ///< telemetry::iteration() at record time
};

/// Process-global span collector.
class Tracer {
 public:
  static Tracer& instance();

  /// Begin collecting; clears previously collected events. Threads get ring
  /// buffers of `events_per_thread` capacity (drop-oldest beyond that).
  void start(std::size_t events_per_thread = 1 << 16);

  /// Stop collecting (already-recorded events stay readable).
  void stop();

  [[nodiscard]] bool active() const {
    return active_.load(std::memory_order_relaxed);
  }

  /// Record one closed span (called by Span; safe from any thread).
  void record(const char* name, double ts_us, double dur_us,
              std::uint16_t depth);

  /// All recorded events, sorted by start time.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Events dropped to ring-buffer overflow across all threads.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Chrome trace JSON ({"traceEvents": [...]}, `ph:"X"` complete events,
  /// `ts` monotone non-decreasing, rank as `tid` with thread_name
  /// metadata).
  [[nodiscard]] std::string to_chrome_json() const;

  /// Write to_chrome_json() to `path` (throws vqmc::Error on I/O failure).
  void write_chrome_trace(const std::string& path) const;

  /// Drop all collected events and per-thread buffers.
  void clear();

 private:
  Tracer() = default;
  struct ThreadBuffer;
  ThreadBuffer& local_buffer();

  std::atomic<bool> active_{false};
  std::atomic<std::size_t> capacity_{1 << 16};
  mutable std::mutex registry_mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::uint64_t generation_ = 0;  ///< bumped by clear()/start()
};

/// RAII span. Does nothing (and allocates nothing) while the tracer is
/// inactive; otherwise records a TraceEvent when the scope closes.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Close the span now instead of at scope exit (for excluding trailing
  /// work — e.g. sink I/O — from the measured interval). Idempotent.
  void end();

 private:
  const char* name_;
  double start_us_ = 0;
  std::uint16_t depth_ = 0;
  bool live_ = false;
};

}  // namespace vqmc::telemetry

#if VQMC_TELEMETRY_COMPILED
#define VQMC_TELEMETRY_CONCAT_IMPL(a, b) a##b
#define VQMC_TELEMETRY_CONCAT(a, b) VQMC_TELEMETRY_CONCAT_IMPL(a, b)
/// Open a named span covering the rest of the enclosing scope.
#define TELEMETRY_SPAN(name)                                         \
  const ::vqmc::telemetry::Span VQMC_TELEMETRY_CONCAT(telemetry_span_, \
                                                      __COUNTER__)(name)
#else
#define TELEMETRY_SPAN(name) ((void)0)
#endif
