#pragma once

/// \file flight_recorder.hpp
/// \brief Always-on ring of recent iteration summaries with crash-dump
/// export (DESIGN.md §5i).
///
/// Post-mortem telemetry (CSV/JSON/Chrome-trace at exit) is useless when a
/// run dies mid-flight: a SIGKILL'd neighbor, a hung allreduce aborting the
/// group, or a CG breakdown under GuardPolicy::Throw all unwind before any
/// sink is written.  The flight recorder keeps the last `capacity` iteration
/// summaries — energy, guard trips, phase timings, comm wait, live ranks —
/// in a fixed-size, preallocated ring, and dumps them as a timestamped JSONL
/// *crash report* when the process aborts:
///
///  * explicitly, from a CLI's catch block (`dump_crash_report(reason)`),
///    which covers uncaught vqmc::Error and CommTimeoutError aborts;
///  * from a fatal-signal handler (`install_crash_signal_handler()`:
///    SIGSEGV/SIGABRT/SIGFPE/SIGILL/SIGBUS/SIGTERM), which writes the report
///    with async-signal-safe I/O and then re-raises the signal.
///
/// Crash-report schema (one JSON object per line):
///   {"event":"crash_report","reason":...,"rank":...,"pid":...,
///    "unix_time":...,"recorded":N,"entries":K,"signal":S}
///   {"event":"iteration","iteration":...,"rank":...,"energy":...,
///    "guard_trips":...,"sample_seconds":...,"local_energy_seconds":...,
///    "gradient_seconds":...,"sr_seconds":...,"allreduce_seconds":...,
///    "optimizer_seconds":...,"comm_wait_seconds":...,
///    "batch_occupancy":...,"live_ranks":...,"wall_us":...}   (oldest first)
///
/// Overhead discipline matches the rest of the subsystem: `record()` is a
/// no-op when telemetry is disabled (compile-out makes it dead code), the
/// ring is allocated once at configure/first record and never grows, and no
/// thread is started — dumping is driven by the crashing thread itself.

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace vqmc::telemetry {

/// One iteration summary in the flight-recorder ring (plain data: the
/// signal-path dump reads entries without taking locks).
struct FlightRecord {
  std::int64_t iteration = -1;
  int rank = 0;
  int live_ranks = 0;
  double wall_us = 0;  ///< telemetry::now_us() at record time
  double energy = 0;
  std::uint64_t guard_trips = 0;  ///< cumulative at record time
  double sample_seconds = 0;
  double local_energy_seconds = 0;
  double gradient_seconds = 0;
  double sr_seconds = 0;
  double allreduce_seconds = 0;
  double optimizer_seconds = 0;
  double comm_wait_seconds = 0;  ///< allreduce wait incl. barrier park time
  double batch_occupancy = 0;    ///< serve batch rows (0 for training)
};

/// Process-global drop-oldest ring of FlightRecords.
///
/// Thread-safe: any thread may record or snapshot.  In a thread-backed
/// distributed run every rank records into the same ring with its own rank
/// attribution; per-rank views filter on `FlightRecord::rank`.
class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  static FlightRecorder& instance();

  /// Resize the ring to `capacity` entries and drop recorded history. The
  /// single allocation happens here (or lazily at the first record), never
  /// on the record path.
  void configure(std::size_t capacity);

  /// Append one summary (drop-oldest beyond capacity). No-op while
  /// telemetry is disabled; never allocates after the ring exists.
  void record(const FlightRecord& entry);

  /// Ring contents, oldest first. `rank` >= 0 filters to that rank.
  [[nodiscard]] std::vector<FlightRecord> snapshot(int rank = -1) const;

  /// The most recent entry (for `rank` when >= 0). False when empty.
  [[nodiscard]] bool latest(FlightRecord& out, int rank = -1) const;

  /// Total records accepted since configure/clear (drops included).
  [[nodiscard]] std::uint64_t recorded() const;

  /// Iterations per second over the ring's recent entries for `rank`
  /// (-1 = any rank): (last.iteration - first.iteration) / elapsed over the
  /// newest `window` matching entries. 0 when fewer than two entries.
  [[nodiscard]] double iteration_rate(int rank = -1,
                                      std::size_t window = 32) const;

  /// Drop all entries (capacity is kept).
  void clear();

  /// Directory crash reports are written to; empty (the default) disables
  /// dumping — the recorder stays inert unless a CLI opts in.
  void set_crash_dir(const std::string& dir);
  [[nodiscard]] std::string crash_dir() const;

  /// Write a crash report named
  /// `<crash_dir>/vqmc_crash.rank<R>.pid<P>.<unix_time>.jsonl` holding the
  /// current ring, and return its path. Returns "" (and writes nothing)
  /// when no crash dir is configured or the ring is empty. `rank` tags the
  /// report header (-1 = use the last recorded entry's rank).
  std::string dump_crash_report(const std::string& reason, int rank = -1);

  /// Install process-wide fatal-signal handlers (SIGSEGV, SIGABRT, SIGFPE,
  /// SIGILL, SIGBUS, SIGTERM) that dump a crash report with
  /// async-signal-safe I/O and re-raise with the default disposition.
  /// Idempotent; a no-op until a crash dir is configured.
  static void install_crash_signal_handler();

 private:
  FlightRecorder() = default;
  struct Impl;
};

}  // namespace vqmc::telemetry
