#include "telemetry/flight_recorder.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <ctime>
#include <mutex>

namespace vqmc::telemetry {

namespace {

// All recorder state lives here so the fatal-signal path can reach it
// through a plain pointer without touching C++ statics with non-trivial
// initialization order.
struct RecorderState {
  mutable std::mutex mutex;
  std::vector<FlightRecord> ring;  // sized to `capacity`, reused in place
  std::size_t capacity = FlightRecorder::kDefaultCapacity;
  std::size_t head = 0;  // next write slot
  std::size_t size = 0;
  std::uint64_t recorded = 0;
  // Fixed buffer (not std::string): the signal handler reads it and builds
  // the report path with snprintf only.
  char crash_dir[512] = {0};
};

RecorderState& state() {
  static RecorderState s;
  return s;
}

/// Index of the i-th oldest live entry (i in [0, size)).
std::size_t ring_index(const RecorderState& s, std::size_t i) {
  return (s.head + s.capacity - s.size + i) % s.capacity;
}

void write_all(int fd, const char* data, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const ::ssize_t n = ::write(fd, data + done, len - done);
    if (n <= 0) return;  // best effort: we are crashing
    done += std::size_t(n);
  }
}

/// Escape `reason` into `out` for embedding in a JSON string. Bounded,
/// allocation-free (signal path).
void escape_json(const char* reason, char* out, std::size_t cap) {
  std::size_t o = 0;
  for (std::size_t i = 0; reason[i] != '\0' && o + 2 < cap; ++i) {
    const char c = reason[i];
    if (c == '"' || c == '\\') out[o++] = '\\';
    out[o++] = (c >= 0x20 && c != 0x7f) ? c : ' ';
  }
  out[o] = '\0';
}

/// Serialize one ring entry as a JSONL line into `buf`; returns its length.
/// snprintf is not formally async-signal-safe but does not allocate or lock
/// for numeric conversions on the platforms we target — the same trade
/// every practical crash reporter makes.
int format_entry(char* buf, std::size_t cap, const FlightRecord& r) {
  return std::snprintf(
      buf, cap,
      "{\"event\":\"iteration\",\"iteration\":%lld,\"rank\":%d,"
      "\"energy\":%.17g,\"guard_trips\":%llu,\"sample_seconds\":%.9g,"
      "\"local_energy_seconds\":%.9g,\"gradient_seconds\":%.9g,"
      "\"sr_seconds\":%.9g,\"allreduce_seconds\":%.9g,"
      "\"optimizer_seconds\":%.9g,\"comm_wait_seconds\":%.9g,"
      "\"batch_occupancy\":%.9g,\"live_ranks\":%d,\"wall_us\":%.3f}\n",
      static_cast<long long>(r.iteration), r.rank, double(r.energy),
      static_cast<unsigned long long>(r.guard_trips), r.sample_seconds,
      r.local_energy_seconds, r.gradient_seconds, r.sr_seconds,
      r.allreduce_seconds, r.optimizer_seconds, r.comm_wait_seconds,
      r.batch_occupancy, r.live_ranks, r.wall_us);
}

/// Write the crash report to `path_out` (filled in here). Returns true if a
/// report was written. `locked` distinguishes the normal path (caller holds
/// the mutex) from the signal path (no locking: the crashing thread may
/// already own it).
bool dump_report_unlocked(const RecorderState& s, const char* reason,
                          int rank, int signo, char* path_out,
                          std::size_t path_cap) {
  if (s.crash_dir[0] == '\0' || s.size == 0) return false;
  int report_rank = rank;
  if (report_rank < 0)
    report_rank = s.ring[ring_index(s, s.size - 1)].rank;
  const long long unix_time = static_cast<long long>(::time(nullptr));
  std::snprintf(path_out, path_cap, "%s/vqmc_crash.rank%d.pid%lld.%lld.jsonl",
                s.crash_dir, report_rank,
                static_cast<long long>(::getpid()), unix_time);
  const int fd = ::open(path_out, O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) return false;

  char reason_buf[256];
  escape_json(reason, reason_buf, sizeof(reason_buf));
  char line[1024];
  int len = std::snprintf(
      line, sizeof(line),
      "{\"event\":\"crash_report\",\"reason\":\"%s\",\"rank\":%d,"
      "\"pid\":%lld,\"unix_time\":%lld,\"recorded\":%llu,"
      "\"entries\":%llu,\"signal\":%d}\n",
      reason_buf, report_rank, static_cast<long long>(::getpid()), unix_time,
      static_cast<unsigned long long>(s.recorded),
      static_cast<unsigned long long>(s.size), signo);
  if (len > 0) write_all(fd, line, std::size_t(len));
  for (std::size_t i = 0; i < s.size; ++i) {
    len = format_entry(line, sizeof(line), s.ring[ring_index(s, i)]);
    if (len > 0) write_all(fd, line, std::size_t(len));
  }
  ::close(fd);
  return true;
}

constexpr int kFatalSignals[] = {SIGSEGV, SIGABRT, SIGFPE,
                                SIGILL,  SIGBUS,  SIGTERM};

void fatal_signal_handler(int signo) {
  // No locking: the thread that crashed may hold the recorder mutex. The
  // ring vector is preallocated and only overwritten in place, so a torn
  // read yields at worst one garbled entry — acceptable in a crash report.
  RecorderState& s = state();
  char path[640];
  char reason[64];
  std::snprintf(reason, sizeof(reason), "fatal signal %d", signo);
  dump_report_unlocked(s, reason, -1, signo, path, sizeof(path));
  // SA_RESETHAND restored the default disposition; re-raise so the exit
  // status still reports death-by-signal.
  ::raise(signo);
}

}  // namespace

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::configure(std::size_t capacity) {
  RecorderState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.capacity = capacity == 0 ? 1 : capacity;
  s.ring.assign(s.capacity, FlightRecord{});
  s.head = 0;
  s.size = 0;
  s.recorded = 0;
}

void FlightRecorder::record(const FlightRecord& entry) {
  if (!enabled()) return;
  RecorderState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (s.ring.size() != s.capacity) s.ring.assign(s.capacity, FlightRecord{});
  s.ring[s.head] = entry;
  s.head = (s.head + 1) % s.capacity;
  if (s.size < s.capacity) ++s.size;
  ++s.recorded;
}

std::vector<FlightRecord> FlightRecorder::snapshot(int rank) const {
  const RecorderState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  std::vector<FlightRecord> out;
  out.reserve(s.size);
  for (std::size_t i = 0; i < s.size; ++i) {
    const FlightRecord& r = s.ring[ring_index(s, i)];
    if (rank < 0 || r.rank == rank) out.push_back(r);
  }
  return out;
}

bool FlightRecorder::latest(FlightRecord& out, int rank) const {
  const RecorderState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  for (std::size_t i = s.size; i-- > 0;) {
    const FlightRecord& r = s.ring[ring_index(s, i)];
    if (rank < 0 || r.rank == rank) {
      out = r;
      return true;
    }
  }
  return false;
}

std::uint64_t FlightRecorder::recorded() const {
  const RecorderState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.recorded;
}

double FlightRecorder::iteration_rate(int rank, std::size_t window) const {
  const RecorderState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  // Collect the newest `window` matching entries (oldest-first order).
  const FlightRecord* first = nullptr;
  const FlightRecord* last = nullptr;
  std::size_t matched = 0;
  for (std::size_t i = s.size; i-- > 0 && matched < window;) {
    const FlightRecord& r = s.ring[ring_index(s, i)];
    if (rank >= 0 && r.rank != rank) continue;
    if (last == nullptr) last = &r;
    first = &r;
    ++matched;
  }
  if (matched < 2 || first->wall_us >= last->wall_us) return 0;
  const double iterations = double(last->iteration - first->iteration);
  const double seconds = (last->wall_us - first->wall_us) * 1e-6;
  return iterations > 0 && seconds > 0 ? iterations / seconds : 0;
}

void FlightRecorder::clear() {
  RecorderState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.head = 0;
  s.size = 0;
  s.recorded = 0;
}

void FlightRecorder::set_crash_dir(const std::string& dir) {
  RecorderState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  std::snprintf(s.crash_dir, sizeof(s.crash_dir), "%s", dir.c_str());
}

std::string FlightRecorder::crash_dir() const {
  const RecorderState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.crash_dir;
}

std::string FlightRecorder::dump_crash_report(const std::string& reason,
                                              int rank) {
  RecorderState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  char path[640];
  if (!dump_report_unlocked(s, reason.c_str(), rank, 0, path, sizeof(path)))
    return "";
  return path;
}

void FlightRecorder::install_crash_signal_handler() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = &fatal_signal_handler;
    sigemptyset(&action.sa_mask);
    // One shot: restore the default disposition before the handler runs so
    // a crash inside the handler (or the re-raise) terminates normally.
    action.sa_flags = SA_RESETHAND;
    for (const int signo : kFatalSignals) ::sigaction(signo, &action, nullptr);
  });
}

}  // namespace vqmc::telemetry
