#pragma once

/// \file splitmix.hpp
/// \brief SplitMix64: a tiny, high-quality 64-bit mixing generator.
///
/// Used to expand a single user-provided seed into the larger state of
/// xoshiro256++ / Philox, and as a cheap standalone generator in tests.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014); constants from Vigna's public-domain code.

#include <cstdint>

namespace vqmc::rng {

/// SplitMix64 generator. Satisfies UniformRandomBitGenerator.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  constexpr std::uint64_t operator()() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// One-shot stateless mix; handy for hashing (seed, stream) pairs.
constexpr std::uint64_t splitmix64_once(std::uint64_t x) {
  SplitMix64 g(x);
  return g();
}

}  // namespace vqmc::rng
