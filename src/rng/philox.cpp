#include "rng/philox.hpp"

namespace vqmc::rng {

namespace {

constexpr std::uint32_t kPhiloxM0 = 0xD2511F53u;
constexpr std::uint32_t kPhiloxM1 = 0xCD9E8D57u;
constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;  // golden ratio
constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;  // sqrt(3) - 1

inline void mulhilo(std::uint32_t a, std::uint32_t b, std::uint32_t& hi,
                    std::uint32_t& lo) {
  const std::uint64_t product = static_cast<std::uint64_t>(a) * b;
  hi = static_cast<std::uint32_t>(product >> 32);
  lo = static_cast<std::uint32_t>(product);
}

inline std::array<std::uint32_t, 4> round_once(std::array<std::uint32_t, 4> x,
                                               std::array<std::uint32_t, 2> k) {
  std::uint32_t hi0, lo0, hi1, lo1;
  mulhilo(kPhiloxM0, x[0], hi0, lo0);
  mulhilo(kPhiloxM1, x[2], hi1, lo1);
  return {hi1 ^ x[1] ^ k[0], lo1, hi0 ^ x[3] ^ k[1], lo0};
}

inline std::array<std::uint32_t, 4> philox10(std::array<std::uint32_t, 4> ctr,
                                             std::array<std::uint32_t, 2> key) {
  for (int round = 0; round < 10; ++round) {
    ctr = round_once(ctr, key);
    key[0] += kWeyl0;
    key[1] += kWeyl1;
  }
  return ctr;
}

}  // namespace

std::array<std::uint32_t, 4> Philox4x32::at(std::uint64_t key, std::uint64_t hi,
                                            std::uint64_t lo) {
  const std::array<std::uint32_t, 4> ctr = {
      static_cast<std::uint32_t>(lo), static_cast<std::uint32_t>(lo >> 32),
      static_cast<std::uint32_t>(hi), static_cast<std::uint32_t>(hi >> 32)};
  const std::array<std::uint32_t, 2> k = {static_cast<std::uint32_t>(key),
                                          static_cast<std::uint32_t>(key >> 32)};
  return philox10(ctr, k);
}

std::uint32_t Philox4x32::operator()() {
  if (buffered_ >= 4) {
    block_ = philox10(counter_, key_);
    increment_counter();
    buffered_ = 0;
  }
  return block_[buffered_++];
}

void Philox4x32::increment_counter() {
  for (auto& word : counter_) {
    if (++word != 0) break;  // carry into the next word on wrap
  }
}

}  // namespace vqmc::rng
