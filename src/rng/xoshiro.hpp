#pragma once

/// \file xoshiro.hpp
/// \brief xoshiro256++ generator with jump() for independent parallel streams.
///
/// xoshiro256++ is the default generator for sequential sampling paths; it is
/// fast, passes BigCrush, and supports 2^128-step jumps so that each parallel
/// rank can own a provably disjoint subsequence.  Reference implementation by
/// Blackman & Vigna (public domain), adapted to C++20.

#include <array>
#include <cstdint>

#include "rng/splitmix.hpp"

namespace vqmc::rng {

/// xoshiro256++ 64-bit generator. Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seed the 256-bit state by running SplitMix64 on `seed`.
  explicit Xoshiro256(std::uint64_t seed = 0x9d2c5680u) {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  std::uint64_t operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Advance the state by 2^128 steps. Calling jump() k times on identically
  /// seeded generators yields k disjoint streams of length 2^128 each.
  void jump() {
    static constexpr std::array<std::uint64_t, 4> kJump = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
        0x39abdc4529b1661cULL};
    std::array<std::uint64_t, 4> acc{};
    for (std::uint64_t word : kJump) {
      for (int bit = 0; bit < 64; ++bit) {
        if (word & (std::uint64_t{1} << bit)) {
          for (int i = 0; i < 4; ++i) acc[std::size_t(i)] ^= state_[std::size_t(i)];
        }
        (*this)();
      }
    }
    state_ = acc;
  }

  /// Construct the `stream`-th jump-separated stream from `seed`.
  static Xoshiro256 stream(std::uint64_t seed, std::uint64_t stream_index) {
    Xoshiro256 g(seed);
    for (std::uint64_t i = 0; i < stream_index; ++i) g.jump();
    return g;
  }

  /// The full 256-bit state (checkpoint/restart: restoring it resumes the
  /// stream exactly where it stopped).
  [[nodiscard]] std::array<std::uint64_t, 4> state() const { return state_; }
  void set_state(const std::array<std::uint64_t, 4>& state) { state_ = state; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace vqmc::rng
