#pragma once

/// \file philox.hpp
/// \brief Philox4x32-10 counter-based RNG (Salmon et al., SC'11).
///
/// Counter-based generators give random access into the stream: the value at
/// counter c is a pure function of (key, c).  This is the idiom GPU codes use
/// for reproducible parallel sampling — every (rank, sample, step) tuple maps
/// to a unique counter, so results are independent of scheduling.  We use it
/// for the virtual-cluster sampler so a run with L ranks is bit-reproducible
/// regardless of thread interleaving.

#include <array>
#include <cstdint>

namespace vqmc::rng {

/// Philox4x32 with 10 rounds. Produces 4 x 32-bit words per counter tick.
class Philox4x32 {
 public:
  using result_type = std::uint32_t;

  /// \param key 64-bit key (e.g. global seed mixed with a stream id).
  explicit Philox4x32(std::uint64_t key = 0) { set_key(key); }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint32_t{0}; }

  void set_key(std::uint64_t key) {
    key_ = {static_cast<std::uint32_t>(key),
            static_cast<std::uint32_t>(key >> 32)};
    buffered_ = 4;  // force regeneration
  }

  /// Position the generator at 128-bit counter value (hi, lo).
  void set_counter(std::uint64_t hi, std::uint64_t lo) {
    counter_ = {static_cast<std::uint32_t>(lo),
                static_cast<std::uint32_t>(lo >> 32),
                static_cast<std::uint32_t>(hi),
                static_cast<std::uint32_t>(hi >> 32)};
    buffered_ = 4;
  }

  /// Stateless evaluation: the 4 words at counter (hi, lo) under `key`.
  static std::array<std::uint32_t, 4> at(std::uint64_t key, std::uint64_t hi,
                                         std::uint64_t lo);

  /// Sequential interface (buffers one 4-word block at a time).
  std::uint32_t operator()();

  /// 64-bit convenience draw.
  std::uint64_t next_u64() {
    const std::uint64_t lo = (*this)();
    const std::uint64_t hi = (*this)();
    return (hi << 32) | lo;
  }

  /// Full generator state packed as 6 words (checkpoint/restart):
  /// [key, counter_lo, counter_hi, block words 0-1, block words 2-3,
  /// buffered index].
  [[nodiscard]] std::array<std::uint64_t, 6> state() const {
    return {pack(key_[0], key_[1]),
            pack(counter_[0], counter_[1]),
            pack(counter_[2], counter_[3]),
            pack(block_[0], block_[1]),
            pack(block_[2], block_[3]),
            std::uint64_t(buffered_)};
  }
  void set_state(const std::array<std::uint64_t, 6>& s) {
    key_ = {lo32(s[0]), hi32(s[0])};
    counter_ = {lo32(s[1]), hi32(s[1]), lo32(s[2]), hi32(s[2])};
    block_ = {lo32(s[3]), hi32(s[3]), lo32(s[4]), hi32(s[4])};
    buffered_ = unsigned(s[5]);
  }

 private:
  static constexpr std::uint64_t pack(std::uint32_t lo, std::uint32_t hi) {
    return std::uint64_t(lo) | (std::uint64_t(hi) << 32);
  }
  static constexpr std::uint32_t lo32(std::uint64_t w) {
    return std::uint32_t(w);
  }
  static constexpr std::uint32_t hi32(std::uint64_t w) {
    return std::uint32_t(w >> 32);
  }

  void increment_counter();

  std::array<std::uint32_t, 2> key_{};
  std::array<std::uint32_t, 4> counter_{};
  std::array<std::uint32_t, 4> block_{};
  unsigned buffered_ = 4;  // index of next unread word; 4 == empty
};

}  // namespace vqmc::rng
