#pragma once

/// \file distributions.hpp
/// \brief Distribution helpers on top of any UniformRandomBitGenerator.
///
/// We deliberately avoid `std::uniform_real_distribution` & friends: their
/// output is implementation-defined, which would make tests and experiment
/// tables differ across standard libraries.  These helpers are exact and
/// portable.

#include <cmath>
#include <cstdint>
#include <numbers>

namespace vqmc::rng {

/// Uniform double in [0, 1) with 53 random bits.
template <typename Generator>
double uniform01(Generator& gen) {
  // Use the top 53 bits of a 64-bit draw.
  const std::uint64_t bits = static_cast<std::uint64_t>(gen()) |
                             (static_cast<std::uint64_t>(gen()) << 32);
  return double(bits >> 11) * 0x1.0p-53;
}

// 64-bit generators produce the full word in a single call.
template <typename Generator>
  requires(sizeof(typename Generator::result_type) == 8)
double uniform01(Generator& gen) {
  return double(gen() >> 11) * 0x1.0p-53;
}

/// Uniform double in [lo, hi).
template <typename Generator>
double uniform(Generator& gen, double lo, double hi) {
  return lo + (hi - lo) * uniform01(gen);
}

/// Uniform integer in [0, n) (Lemire-style rejection; unbiased).
template <typename Generator>
std::uint64_t uniform_index(Generator& gen, std::uint64_t n) {
  if (n == 0) return 0;
  std::uint64_t draw, limit = (~std::uint64_t{0}) - (~std::uint64_t{0}) % n;
  do {
    if constexpr (sizeof(typename Generator::result_type) == 8) {
      draw = gen();
    } else {
      draw = static_cast<std::uint64_t>(gen()) |
             (static_cast<std::uint64_t>(gen()) << 32);
    }
  } while (draw >= limit);
  return draw % n;
}

/// Bernoulli(p) draw.
template <typename Generator>
bool bernoulli(Generator& gen, double p) {
  return uniform01(gen) < p;
}

/// Standard normal via Box–Muller (one value; the pair is not cached so the
/// draw count per sample is deterministic — important for reproducibility).
template <typename Generator>
double normal(Generator& gen) {
  double u1 = uniform01(gen);
  // Guard against log(0); the smallest representable u1 is fine.
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform01(gen);
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

/// Normal with mean/stddev.
template <typename Generator>
double normal(Generator& gen, double mean, double stddev) {
  return mean + stddev * normal(gen);
}

}  // namespace vqmc::rng
