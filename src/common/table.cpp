#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace vqmc {

void Table::set_header(std::vector<std::string> header) {
  VQMC_REQUIRE(rows_.empty() || header.size() == rows_.front().size(),
               "header arity must match existing rows");
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  VQMC_REQUIRE(header_.empty() || row.size() == header_.size(),
               "row arity must match header");
  VQMC_REQUIRE(rows_.empty() || row.size() == rows_.front().size(),
               "row arity must match previous rows");
  rows_.push_back(std::move(row));
}

std::size_t Table::columns() const {
  if (!header_.empty()) return header_.size();
  if (!rows_.empty()) return rows_.front().size();
  return 0;
}

const std::vector<std::string>& Table::row(std::size_t i) const {
  VQMC_REQUIRE(i < rows_.size(), "row index out of range");
  return rows_[i];
}

std::string Table::to_string() const {
  const std::size_t ncol = columns();
  std::vector<std::size_t> width(ncol, 0);
  auto widen = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream oss;
  if (!title_.empty()) oss << title_ << "\n";
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      oss << (c == 0 ? "| " : " | ") << std::left << std::setw(int(width[c]))
          << r[c];
    }
    oss << " |\n";
  };
  if (!header_.empty()) {
    emit(header_);
    for (std::size_t c = 0; c < ncol; ++c) {
      oss << (c == 0 ? "|-" : "-|-") << std::string(width[c], '-');
    }
    oss << "-|\n";
  }
  for (const auto& r : rows_) emit(r);
  return oss.str();
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& field) {
    if (field.find_first_of(",\"\n") == std::string::npos) return field;
    std::string out = "\"";
    for (char ch : field) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream oss;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) oss << ',';
      oss << quote(r[c]);
    }
    oss << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return oss.str();
}

std::string format_fixed(double value, int digits) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(digits) << value;
  return oss.str();
}

std::string format_mean_std(double mean, double std, int digits) {
  return format_fixed(mean, digits) + " ± " + format_fixed(std, digits);
}

}  // namespace vqmc
