#include "common/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <iostream>
#include <memory>
#include <mutex>

namespace vqmc {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::Info)};
std::mutex g_mutex;
thread_local int t_rank = -1;
// Sink swaps are rare; reads are per-message. A shared_ptr snapshot under
// the mutex keeps an in-flight sink alive across set_log_sink(nullptr).
std::shared_ptr<const LogSink> g_sink;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug:
      return "debug";
    case LogLevel::Info:
      return "info";
    case LogLevel::Warn:
      return "warn";
    case LogLevel::Error:
      return "error";
    case LogLevel::Off:
      return "off";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_rank(int rank) { t_rank = rank; }

int log_rank() { return t_rank; }

std::string iso8601_utc_timestamp() {
  using namespace std::chrono;
  const system_clock::time_point now = system_clock::now();
  const std::time_t seconds = system_clock::to_time_t(now);
  const auto millis =
      duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000;
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, int(millis));
  return buf;
}

void set_log_sink(LogSink sink) {
  auto holder =
      sink ? std::make_shared<const LogSink>(std::move(sink)) : nullptr;
  const std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = std::move(holder);
}

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  std::string line = "[" + iso8601_utc_timestamp() + "] [" +
                     level_name(level) + "] ";
  if (t_rank >= 0) line += "[rank " + std::to_string(t_rank) + "] ";
  line += message;
  std::shared_ptr<const LogSink> sink;
  {
    const std::lock_guard<std::mutex> lock(g_mutex);
    std::cerr << line << "\n";
    sink = g_sink;
  }
  if (sink) (*sink)(level, message);
}

}  // namespace vqmc
