#include "common/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace vqmc {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::Info)};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug:
      return "debug";
    case LogLevel::Info:
      return "info";
    case LogLevel::Warn:
      return "warn";
    case LogLevel::Error:
      return "error";
    case LogLevel::Off:
      return "off";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[" << level_name(level) << "] " << message << "\n";
}

}  // namespace vqmc
