#include "common/health.hpp"

#include <cmath>

#include "common/error.hpp"

namespace vqmc::health {

bool all_finite(std::span<const Real> values) {
  for (const Real v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

bool all_finite(const Matrix& values) {
  return all_finite(std::span<const Real>(values.data(), values.size()));
}

std::size_t count_nonfinite(std::span<const Real> values) {
  std::size_t bad = 0;
  for (const Real v : values) {
    if (!std::isfinite(v)) ++bad;
  }
  return bad;
}

const char* to_string(GuardPolicy policy) {
  switch (policy) {
    case GuardPolicy::Throw:
      return "throw";
    case GuardPolicy::SkipIteration:
      return "skip";
    case GuardPolicy::RollbackAndBackoff:
      return "rollback";
  }
  return "throw";
}

GuardPolicy parse_guard_policy(const std::string& name) {
  if (name == "throw" || name == "Throw") return GuardPolicy::Throw;
  if (name == "skip" || name == "SkipIteration")
    return GuardPolicy::SkipIteration;
  if (name == "rollback" || name == "RollbackAndBackoff")
    return GuardPolicy::RollbackAndBackoff;
  throw Error("unknown guard policy '" + name +
              "' (expected throw, skip or rollback)");
}

DivergenceDetector::DivergenceDetector(const GuardConfig& config)
    : window_(config.divergence_window),
      factor_(config.divergence_factor),
      offset_(config.divergence_offset) {}

bool DivergenceDetector::update(Real energy) {
  if (!std::isfinite(energy)) return false;  // non-finite is its own guard
  if (!have_best_ || energy < best_) {
    best_ = energy;
    have_best_ = true;
  }
  if (window_ <= 0) return false;
  const Real threshold = best_ + factor_ * (std::abs(best_) + offset_);
  if (energy > threshold) {
    ++consecutive_;
  } else {
    consecutive_ = 0;
  }
  return consecutive_ >= window_;
}

void DivergenceDetector::reset_streak() { consecutive_ = 0; }

}  // namespace vqmc::health
