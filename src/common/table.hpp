#pragma once

/// \file table.hpp
/// \brief ASCII / CSV table rendering used by the benchmark harness to print
/// paper-style tables (Tables 1-7 of Zhao et al., SC'21).

#include <string>
#include <vector>

namespace vqmc {

/// Column-aligned text table with an optional title.
///
/// Usage:
/// \code
///   Table t("Table 1: Training time (seconds)");
///   t.set_header({"Model", "Sampler", "n=20", "n=50"});
///   t.add_row({"RBM", "MCMC", "135.64", "154.25"});
///   std::cout << t.to_string();
/// \endcode
class Table {
 public:
  Table() = default;
  explicit Table(std::string title) : title_(std::move(title)) {}

  void set_title(std::string title) { title_ = std::move(title); }
  void set_header(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header (if set).
  void add_row(std::vector<std::string> row);

  /// Number of data rows (excluding header).
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const;
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const;
  [[nodiscard]] const std::vector<std::string>& header() const {
    return header_;
  }

  /// Render with aligned columns, `|` separators and a rule under the header.
  [[nodiscard]] std::string to_string() const;

  /// Render as RFC-4180-ish CSV (quotes fields containing commas/quotes).
  [[nodiscard]] std::string to_csv() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `digits` significant decimal places (fixed).
std::string format_fixed(double value, int digits);

/// Format "mean ± std" the way the paper's tables do.
std::string format_mean_std(double mean, double std, int digits);

}  // namespace vqmc
