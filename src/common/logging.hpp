#pragma once

/// \file logging.hpp
/// \brief Minimal leveled logger used by trainers and benches.
///
/// The logger writes to stderr as
///
///   [2026-08-05T12:00:00.123Z] [info] [rank 2] message
///
/// with the `[rank N]` segment present only on threads that declared a rank
/// via `set_log_rank` (distributed rank threads do; the ISO-8601 UTC
/// timestamp makes interleaved multi-rank output attributable and
/// orderable).  The global level defaults to Info and can be tightened by
/// benches that want quiet output.  Logging is intentionally synchronous
/// and unbuffered; the library emits few messages (per-iteration metrics go
/// through MetricsHistory instead).
///
/// A process-wide sink hook (`set_log_sink`) receives every emitted
/// message; the telemetry subsystem's JSONL logger uses it to mirror log
/// lines as structured events.

#include <functional>
#include <sstream>
#include <string>

namespace vqmc {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Set the process-wide log level.
void set_log_level(LogLevel level);

/// Current process-wide log level.
LogLevel log_level();

/// Declare the calling thread's rank for log attribution (-1 = no rank,
/// the default; distributed rank threads set their communicator rank).
void set_log_rank(int rank);

/// The calling thread's declared rank (-1 when none).
[[nodiscard]] int log_rank();

/// Current UTC wall time as ISO-8601 with millisecond precision
/// ("2026-08-05T12:00:00.123Z").
[[nodiscard]] std::string iso8601_utc_timestamp();

/// Observer receiving every emitted (above-threshold) message alongside
/// stderr. Pass nullptr to uninstall.
using LogSink = std::function<void(LogLevel, const std::string&)>;
void set_log_sink(LogSink sink);

/// Emit one message at `level` (no-op if below the global level).
void log_message(LogLevel level, const std::string& message);

namespace detail {

template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream oss;
  (oss << ... << std::forward<Args>(args));
  return oss.str();
}

}  // namespace detail

/// Convenience variadic logging helpers: vqmc::log_info("n=", n).
template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::Debug)
    log_message(LogLevel::Debug, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::Info)
    log_message(LogLevel::Info, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::Warn)
    log_message(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::Error)
    log_message(LogLevel::Error, detail::concat(std::forward<Args>(args)...));
}

}  // namespace vqmc
