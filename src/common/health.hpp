#pragma once

/// \file health.hpp
/// \brief Run-health subsystem: non-finite guards, divergence detection and
/// recovery policy for long-running stochastic training loops.
///
/// VQMC training is a stochastic loop in which a single NaN local energy, an
/// SR/CG breakdown, or one bad rank feeding an allreduce can silently corrupt
/// every replica.  This layer provides the shared vocabulary used by the
/// trainer, the distributed trainer, SR and the samplers:
///
///  * cheap non-finite scans over spans/matrices (`all_finite`,
///    `count_nonfinite`);
///  * a `DivergenceDetector` that flags energy explosions relative to the
///    running best;
///  * a `GuardPolicy` deciding what a tripped guard does — fail fast
///    (`Throw`), drop the iteration (`SkipIteration`) or restore the
///    last-good parameter snapshot and shrink the learning rate
///    (`RollbackAndBackoff`);
///  * `HealthCounters`, the per-run tally surfaced through
///    `IterationMetrics` / `DistributedResult` so every run reports its
///    health.

#include <cstdint>
#include <span>
#include <string>

#include "tensor/matrix.hpp"
#include "tensor/real.hpp"

namespace vqmc::health {

/// True iff every element is finite (no NaN, no +-inf). Early-exits on the
/// first bad value, so the healthy-path cost is one linear scan.
bool all_finite(std::span<const Real> values);

/// Overload scanning a matrix's contiguous storage.
bool all_finite(const Matrix& values);

/// Number of non-finite elements (for diagnostic messages).
std::size_t count_nonfinite(std::span<const Real> values);

/// What a tripped guard does to the training loop.
enum class GuardPolicy {
  /// Throw vqmc::Error with a descriptive reason — fail fast (default).
  Throw,
  /// Drop the iteration: no parameter update, training continues. Parameters
  /// are bitwise unchanged by a skipped iteration.
  SkipIteration,
  /// Restore the last-good parameter snapshot (the parameters most recently
  /// observed to produce finite local energies) and multiply the base
  /// learning rate by `GuardConfig::backoff_factor`.
  RollbackAndBackoff,
};

/// Short lowercase name ("throw" / "skip" / "rollback").
const char* to_string(GuardPolicy policy);

/// Inverse of to_string; accepts the full enum spelling too. Throws
/// vqmc::Error on unknown names.
GuardPolicy parse_guard_policy(const std::string& name);

/// Guard configuration shared by the serial and distributed trainers.
struct GuardConfig {
  GuardPolicy policy = GuardPolicy::Throw;
  /// Divergence detection: trip after `divergence_window` consecutive
  /// iterations whose batch energy exceeds
  ///   best + divergence_factor * (|best| + divergence_offset).
  /// A window of 0 disables the detector (the default: plain non-finite
  /// guards only, so healthy runs are bit-identical with guards on or off).
  int divergence_window = 0;
  Real divergence_factor = 100;
  Real divergence_offset = 1;
  /// Learning-rate multiplier applied on each RollbackAndBackoff trip.
  Real backoff_factor = 0.5;
};

/// Flags energy explosions relative to the running best batch energy.
///
/// Feed it one finite batch-mean energy per iteration; it returns true when
/// the energy has exceeded the explosion threshold for `divergence_window`
/// consecutive updates. Disabled (always false) when the window is 0.
class DivergenceDetector {
 public:
  DivergenceDetector() = default;
  explicit DivergenceDetector(const GuardConfig& config);

  /// Record one batch energy; true when the divergence guard trips.
  bool update(Real energy);

  /// Forget the consecutive-explosion streak (e.g. after a rollback). The
  /// running best is kept: a post-rollback re-explosion should trip quickly.
  void reset_streak();

  [[nodiscard]] Real running_best() const { return best_; }

  /// Dynamic state for checkpoint/restart (the window/factor/offset knobs
  /// come from GuardConfig and are not part of it).
  struct State {
    Real best = 0;
    bool have_best = false;
    int consecutive = 0;
  };
  [[nodiscard]] State state() const { return {best_, have_best_, consecutive_}; }
  void set_state(const State& s) {
    best_ = s.best;
    have_best_ = s.have_best;
    consecutive_ = s.consecutive;
  }

 private:
  int window_ = 0;
  Real factor_ = 100;
  Real offset_ = 1;
  Real best_ = 0;
  bool have_best_ = false;
  int consecutive_ = 0;
};

/// Per-run tally of guard activity.
struct HealthCounters {
  std::uint64_t guard_trips = 0;          ///< total tripped iterations
  std::uint64_t nonfinite_energy = 0;     ///< batches with NaN/inf local energy
  std::uint64_t nonfinite_gradient = 0;   ///< non-finite energy gradients
  std::uint64_t nonfinite_update = 0;     ///< non-finite post-SR updates
  std::uint64_t sr_breakdowns = 0;        ///< SR/CG solver breakdowns
  std::uint64_t divergences = 0;          ///< divergence-detector trips
  std::uint64_t skipped_iterations = 0;   ///< SkipIteration recoveries
  std::uint64_t rollbacks = 0;            ///< RollbackAndBackoff recoveries
  std::string last_trip_reason;           ///< human-readable, "" if none
};

}  // namespace vqmc::health
