#pragma once

/// \file error.hpp
/// \brief Error handling primitives for the vqmc library.
///
/// The library throws `vqmc::Error` (derived from std::runtime_error) for
/// recoverable precondition violations and uses `VQMC_REQUIRE` for argument
/// validation at public API boundaries.  Internal invariants that indicate
/// programmer error use `VQMC_ASSERT`, which is compiled out in release
/// builds unless `VQMC_ENABLE_ASSERTS` is defined.

#include <sstream>
#include <stdexcept>
#include <string>

namespace vqmc {

/// Exception type thrown by all vqmc components on precondition violations.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A collective communication call exceeded its deadline (or the group was
/// aborted while this rank was blocked inside a collective). Catching this
/// distinctly from plain Error lets a driver distinguish "a peer is hung or
/// dead" from "my own inputs were invalid" and react accordingly (shrink the
/// group, checkpoint and abort, ...).
class CommTimeoutError : public Error {
 public:
  explicit CommTimeoutError(const std::string& what) : Error(what) {}
};

/// Thrown on a rank that has been declared dead (e.g. by fault injection).
/// The rank must have already left its communicator group — peers are not
/// blocked on it — so the training loop can catch this, record the death and
/// let the surviving ranks continue elastically.
class RankDeadError : public Error {
 public:
  explicit RankDeadError(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_error(const char* file, int line,
                                     const std::string& message) {
  std::ostringstream oss;
  oss << message << " (" << file << ":" << line << ")";
  throw Error(oss.str());
}

}  // namespace detail

}  // namespace vqmc

/// Validate a public-API precondition; throws vqmc::Error on failure.
#define VQMC_REQUIRE(cond, message)                                \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::vqmc::detail::throw_error(__FILE__, __LINE__,              \
                                  std::string("precondition failed: ") + \
                                      (message));                  \
    }                                                              \
  } while (false)

/// Internal invariant check. Enabled in debug builds (or when
/// VQMC_ENABLE_ASSERTS is defined); compiled to nothing otherwise.
#if !defined(NDEBUG) || defined(VQMC_ENABLE_ASSERTS)
#define VQMC_ASSERT(cond, message)                                        \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::vqmc::detail::throw_error(__FILE__, __LINE__,                     \
                                  std::string("invariant violated: ") +   \
                                      (message));                         \
    }                                                                     \
  } while (false)
#else
#define VQMC_ASSERT(cond, message) \
  do {                             \
  } while (false)
#endif
