#pragma once

/// \file options.hpp
/// \brief Tiny command-line option parser shared by the bench binaries and
/// example applications.
///
/// Supports `--name value`, `--name=value` and boolean flags (`--full`).
/// Unknown options are an error so typos in experiment sweeps fail loudly.

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace vqmc {

/// Declarative command-line parser.
///
/// \code
///   OptionParser opts("bench_table1");
///   opts.add_flag("full", "run paper-scale parameters");
///   opts.add_option("seeds", "5", "number of random seeds");
///   opts.parse(argc, argv);
///   int seeds = opts.get_int("seeds");
/// \endcode
class OptionParser {
 public:
  explicit OptionParser(std::string program, std::string description = "");

  /// Register a boolean flag (defaults to false).
  void add_flag(const std::string& name, const std::string& help);

  /// Register a valued option with a default.
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& help);

  /// Parse argv; throws vqmc::Error on unknown options or missing values.
  /// Recognizes `--help` and returns false (after printing usage) if seen.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] bool get_flag(const std::string& name) const;
  [[nodiscard]] std::string get_string(const std::string& name) const;
  [[nodiscard]] int get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;

  /// Comma-separated list of integers ("20,50,100").
  [[nodiscard]] std::vector<int> get_int_list(const std::string& name) const;

  [[nodiscard]] std::string usage() const;

 private:
  struct Spec {
    bool is_flag = false;
    std::string default_value;
    std::string help;
  };
  std::string program_;
  std::string description_;
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
};

}  // namespace vqmc
