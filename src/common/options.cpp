#include "common/options.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "common/error.hpp"

namespace vqmc {

OptionParser::OptionParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void OptionParser::add_flag(const std::string& name, const std::string& help) {
  specs_[name] = Spec{true, "false", help};
}

void OptionParser::add_option(const std::string& name,
                              const std::string& default_value,
                              const std::string& help) {
  specs_[name] = Spec{false, default_value, help};
}

bool OptionParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    VQMC_REQUIRE(arg.rfind("--", 0) == 0, "expected --option, got '" + arg + "'");
    arg = arg.substr(2);
    if (arg == "help") {
      std::cout << usage();
      return false;
    }
    std::string value;
    bool has_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    auto it = specs_.find(arg);
    VQMC_REQUIRE(it != specs_.end(), "unknown option --" + arg);
    if (it->second.is_flag) {
      VQMC_REQUIRE(!has_value, "flag --" + arg + " takes no value");
      values_[arg] = "true";
    } else {
      if (!has_value) {
        VQMC_REQUIRE(i + 1 < argc, "missing value for --" + arg);
        value = argv[++i];
      }
      values_[arg] = value;
    }
  }
  return true;
}

bool OptionParser::get_flag(const std::string& name) const {
  auto spec = specs_.find(name);
  VQMC_REQUIRE(spec != specs_.end() && spec->second.is_flag,
               "unregistered flag --" + name);
  auto it = values_.find(name);
  return it != values_.end() && it->second == "true";
}

std::string OptionParser::get_string(const std::string& name) const {
  auto spec = specs_.find(name);
  VQMC_REQUIRE(spec != specs_.end(), "unregistered option --" + name);
  auto it = values_.find(name);
  return it != values_.end() ? it->second : spec->second.default_value;
}

int OptionParser::get_int(const std::string& name) const {
  const std::string s = get_string(name);
  try {
    std::size_t pos = 0;
    int v = std::stoi(s, &pos);
    VQMC_REQUIRE(pos == s.size(), "trailing characters in --" + name);
    return v;
  } catch (const std::logic_error&) {
    throw Error("option --" + name + " is not an integer: '" + s + "'");
  }
}

double OptionParser::get_double(const std::string& name) const {
  const std::string s = get_string(name);
  try {
    std::size_t pos = 0;
    double v = std::stod(s, &pos);
    VQMC_REQUIRE(pos == s.size(), "trailing characters in --" + name);
    return v;
  } catch (const std::logic_error&) {
    throw Error("option --" + name + " is not a number: '" + s + "'");
  }
}

std::vector<int> OptionParser::get_int_list(const std::string& name) const {
  const std::string s = get_string(name);
  std::vector<int> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    try {
      out.push_back(std::stoi(item));
    } catch (const std::logic_error&) {
      throw Error("option --" + name + " has a non-integer element: '" + item +
                  "'");
    }
  }
  return out;
}

std::string OptionParser::usage() const {
  std::ostringstream oss;
  oss << "usage: " << program_ << " [options]\n";
  if (!description_.empty()) oss << "  " << description_ << "\n";
  oss << "options:\n";
  for (const auto& [name, spec] : specs_) {
    oss << "  --" << name;
    if (!spec.is_flag) oss << " <value> (default: " << spec.default_value << ")";
    oss << "\n      " << spec.help << "\n";
  }
  oss << "  --help\n      print this message\n";
  return oss.str();
}

}  // namespace vqmc
