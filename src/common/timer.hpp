#pragma once

/// \file timer.hpp
/// \brief Wall-clock timing utilities used by trainers and benches.

#include <chrono>
#include <ctime>

namespace vqmc {

/// Simple monotonic wall-clock stopwatch.
///
/// The timer starts on construction; `seconds()` reports the elapsed time
/// since construction or the most recent `reset()`.
class Timer {
 public:
  using Clock = std::chrono::steady_clock;

  Timer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Elapsed wall-clock seconds since construction / last reset.
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  Clock::time_point start_;
};

/// Per-thread CPU-time stopwatch (CLOCK_THREAD_CPUTIME_ID).
///
/// On an oversubscribed machine (e.g. 24 virtual-device threads on one
/// core) wall time charges a thread for the periods it sat descheduled;
/// CPU time counts only the cycles the thread actually executed, which is
/// the honest per-device cost for the weak-scaling measurements.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() { reset(); }

  void reset() { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &start_); }

  /// Elapsed CPU seconds consumed by the calling thread.
  [[nodiscard]] double seconds() const {
    timespec now{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &now);
    return double(now.tv_sec - start_.tv_sec) +
           double(now.tv_nsec - start_.tv_nsec) * 1e-9;
  }

 private:
  timespec start_{};
};

}  // namespace vqmc
